//! IR passes: kernel fusion and PIM offload partitioning.
//!
//! - **BasicFuse** (§VII-D "+BasicFuse"): merges per-digit KeyMult ops into
//!   `PAccum⟨D⟩` and constant-accumulation runs into `CAccum⟨K⟩`
//!   (Table II compound instructions; §VI-C shows why the fused forms
//!   amortize ACT/PRE).
//! - **AutFuse** (§V-B "+AutFuse"): merges a relocated automorphism with
//!   the accumulation that follows it into a single `AutAccum` kernel,
//!   removing the intermediate's DRAM round trip.
//! - **ExtraFuse** (§VII-D): GPU-only producer/consumer element-wise chain
//!   fusion (e.g. the ModDown fusion of 100x \[38\]) applied to the baseline
//!   that keeps everything on the GPU.
//! - **Offload** (§V-A,C): assigns every element-wise block to PIM and
//!   inserts the user-controlled L2→DRAM write-backs required for
//!   coherence before PIM consumes GPU-produced data.

use std::collections::{HashMap, HashSet};

use gpu::model::GpuModel;
use pim::device::PimDeviceConfig;
use pim::exec::{PimExecutor, PimKernelSpec};
use pim::isa::PimInstruction;
use pim::layout::LayoutPolicy;

use crate::ir::{Executor, FuseTag, Op, OpKind, OpSequence};

/// Which fusions to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// PAccum/CAccum compound instructions.
    pub basic: bool,
    /// AutAccum fusion (requires the reordered builder flow).
    pub aut: bool,
    /// GPU-only extra chain fusion for the no-PIM baseline.
    pub extra: bool,
}

impl FusionConfig {
    /// No fusion at all (the `Base`/`PIM-Base` configurations of Fig. 10).
    pub fn none() -> Self {
        Self {
            basic: false,
            aut: false,
            extra: false,
        }
    }

    /// `+BasicFuse`.
    pub fn basic_only() -> Self {
        Self {
            basic: true,
            aut: false,
            extra: false,
        }
    }

    /// `+BasicFuse +AutFuse` (the full Anaheim configuration).
    pub fn full() -> Self {
        Self {
            basic: true,
            aut: true,
            extra: false,
        }
    }

    /// `+BasicFuse +ExtraFuse` (the strongest GPU-only baseline).
    pub fn gpu_baseline() -> Self {
        Self {
            basic: true,
            aut: true,
            extra: true,
        }
    }
}

/// Statistics from the offload pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffloadStats {
    /// Ops moved to PIM.
    pub offloaded_ops: usize,
    /// Coherence write-back bytes inserted.
    pub writeback_bytes: u64,
}

/// Applies the configured fusions in place.
pub fn fuse(seq: &mut OpSequence, cfg: &FusionConfig) {
    if cfg.basic {
        fuse_groups(seq);
    }
    if cfg.aut {
        fuse_aut_accum(seq);
    }
    if cfg.extra {
        fuse_chains(seq);
    }
}

/// BasicFuse: collapse each KeyMult / ConstAccum group into its compound
/// instruction.
fn fuse_groups(seq: &mut OpSequence) {
    let mut out: Vec<Op> = Vec::with_capacity(seq.ops.len());
    let mut i = 0;
    while i < seq.ops.len() {
        let op = &seq.ops[i];
        let group_of = |o: &Op| match o.fuse {
            Some(FuseTag::KeyMult { group }) => Some((group, true)),
            Some(FuseTag::ConstAccum { group }) => Some((group, false)),
            _ => None,
        };
        if let Some((group, is_keymult)) = group_of(op) {
            // Collect the whole run of this group.
            let mut j = i;
            while j < seq.ops.len() && group_of(&seq.ops[j]) == Some((group, is_keymult)) {
                j += 1;
            }
            let run = &seq.ops[i..j];
            let k = run.len();
            let limbs = match run[0].kind {
                OpKind::Ew { limbs, .. } => limbs,
                _ => unreachable!("fusion tags only appear on Ew ops"),
            };
            let instr = if is_keymult {
                PimInstruction::PAccum(k)
            } else {
                PimInstruction::CAccum(k)
            };
            let mut fusedop = Op::new(
                OpKind::Ew { instr, limbs },
                if is_keymult {
                    "KeyMult (PAccum)"
                } else {
                    "ConstAccum (CAccum)"
                },
            );
            // Union of reads/writes, deduplicated (the accumulators appear
            // once instead of K times — that's the traffic saving).
            let mut seen = HashSet::new();
            for o in run {
                for r in &o.reads {
                    if seen.insert(("r", r.id)) {
                        fusedop.reads.push(*r);
                    }
                }
                for w in &o.writes {
                    if seen.insert(("w", w.id)) {
                        fusedop.writes.push(*w);
                    }
                }
            }
            out.push(fusedop);
            i = j;
        } else {
            out.push(seq.ops[i].clone());
            i += 1;
        }
    }
    seq.ops = out;
}

/// AutFuse: merge tagged (Aut, Add) pairs into one AutAccum kernel.
fn fuse_aut_accum(seq: &mut OpSequence) {
    let mut out: Vec<Op> = Vec::with_capacity(seq.ops.len());
    let mut i = 0;
    while i < seq.ops.len() {
        let a = &seq.ops[i];
        if let (Some(FuseTag::AutThenAccum { group: g1 }), OpKind::Aut { limbs, .. }) =
            (a.fuse, a.kind)
        {
            if i + 1 < seq.ops.len() {
                let b = &seq.ops[i + 1];
                if b.fuse == Some(FuseTag::AutThenAccum { group: g1 }) {
                    // Merge: the automorphism output never round-trips.
                    let mut merged = Op::new(
                        OpKind::Aut {
                            limbs,
                            fused_accum: true,
                        },
                        "AutAccum",
                    );
                    let aut_writes: HashSet<u64> = a.writes.iter().map(|w| w.id).collect();
                    merged.reads.extend(a.reads.iter().copied());
                    merged.reads.extend(
                        b.reads
                            .iter()
                            .filter(|r| {
                                !aut_writes.contains(&r.id) && !a.reads.iter().any(|x| x.id == r.id)
                            })
                            .copied(),
                    );
                    merged.writes.extend(b.writes.iter().copied());
                    out.push(merged);
                    i += 2;
                    continue;
                }
            }
        }
        out.push(seq.ops[i].clone());
        i += 1;
    }
    seq.ops = out;
}

/// ExtraFuse: for back-to-back GPU element-wise producer/consumer pairs,
/// keep the intermediate in registers/L2 (drop its DRAM bytes).
fn fuse_chains(seq: &mut OpSequence) {
    // Map: object id → index of the Ew op that wrote it last.
    let mut last_writer: HashMap<u64, usize> = HashMap::new();
    let len = seq.ops.len();
    for i in 0..len {
        let is_ew = matches!(seq.ops[i].kind, OpKind::Ew { .. });
        if is_ew {
            // If the *immediately preceding* op is an Ew producing one of
            // our reads, elide that intermediate's traffic on both sides.
            let read_ids: Vec<u64> = seq.ops[i].reads.iter().map(|r| r.id).collect();
            for id in read_ids {
                if let Some(&w) = last_writer.get(&id) {
                    if w + 1 == i {
                        for wr in &mut seq.ops[w].writes {
                            if wr.id == id {
                                wr.bytes = 0;
                            }
                        }
                        for rd in &mut seq.ops[i].reads {
                            if rd.id == id {
                                rd.bytes = 0;
                            }
                        }
                    }
                }
            }
        }
        if is_ew {
            for w in seq.ops[i].writes.clone() {
                last_writer.insert(w.id, i);
            }
        }
    }
}

/// The offload cost policy: an element-wise run moves to PIM only when the
/// internal-bandwidth gain beats the transition and write-back overheads
/// (§V-B: "blocks ... that require only a small amount of preparatory DRAM
/// write-backs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadPolicy {
    /// External DRAM bandwidth in GB/s (= bytes/ns).
    pub ext_bw_gbps: f64,
    /// PIM internal bandwidth increase (Table III "BW incr.").
    pub bw_increase: f64,
    /// GPU↔PIM transition cost in ns.
    pub transition_ns: f64,
}

impl OffloadPolicy {
    /// Offload everything eligible regardless of cost (for ablations).
    pub fn aggressive() -> Self {
        Self {
            ext_bw_gbps: f64::INFINITY,
            bw_increase: f64::INFINITY,
            transition_ns: 0.0,
        }
    }

    /// Derives the policy from device parameters.
    pub fn from_parts(ext_bw_gbps: f64, bw_increase: f64, transition_ns: f64) -> Self {
        Self {
            ext_bw_gbps,
            bw_increase,
            transition_ns,
        }
    }
}

/// Device-accurate offload: decides per element-wise run by *executing*
/// the candidate PIM kernels through the device model and comparing with
/// the GPU roofline, including transition and write-back costs — the
/// measurement-driven decision a real framework would make.
pub fn offload_measured(
    seq: &mut OpSequence,
    gpu: &GpuModel,
    dev: &PimDeviceConfig,
    layout: LayoutPolicy,
    transition_ns: f64,
) -> OffloadStats {
    let n = seq.params.n();
    let exec = PimExecutor::new(dev, layout);
    let bw = gpu.config().dram_bw_gbps * gpu.library().elementwise_eff;
    let mut stats = OffloadStats::default();
    let mut gpu_written: HashMap<u64, u64> = HashMap::new();
    let len = seq.ops.len();
    let mut i = 0;
    while i < len {
        if !seq.ops[i].pim_eligible() {
            for w in &seq.ops[i].writes {
                gpu_written.insert(w.id, w.bytes);
            }
            i += 1;
            continue;
        }
        let mut j = i;
        let mut gpu_ns = 0.0f64;
        let mut pim_ns = 2.0 * transition_ns;
        let mut flush = 0u64;
        let mut flushed_ids = HashSet::new();
        let mut supported = true;
        while j < len && seq.ops[j].pim_eligible() {
            let op = &seq.ops[j];
            let (instr, limbs) = match op.kind {
                OpKind::Ew { instr, limbs } => (instr, limbs),
                _ => unreachable!("pim_eligible implies Ew"),
            };
            match exec.execute(&PimKernelSpec { instr, limbs, n }) {
                Ok(r) => pim_ns += r.latency_ns,
                // Unsupported (or otherwise unrunnable) on this device:
                // the block stays on the GPU.
                Err(_) => supported = false,
            }
            gpu_ns +=
                (op.bytes_read() + op.bytes_written()) as f64 / bw + gpu.config().kernel_launch_ns;
            for r in &op.reads {
                if let Some(&bytes) = gpu_written.get(&r.id) {
                    if flushed_ids.insert(r.id) {
                        flush += bytes;
                    }
                }
            }
            j += 1;
        }
        pim_ns += flush as f64 / bw;
        if supported && pim_ns < gpu_ns {
            for op in &mut seq.ops[i..j] {
                op.executor = Executor::Pim;
                stats.offloaded_ops += 1;
            }
        }
        i = j;
    }
    insert_writebacks(seq, &mut stats);
    stats
}

/// Offload: move profitable element-wise runs to PIM and insert coherence
/// write-backs for GPU-produced inputs of PIM kernels.
pub fn offload(seq: &mut OpSequence, policy: &OffloadPolicy) -> OffloadStats {
    let mut stats = OffloadStats::default();
    // Which object ids were last written by a non-element-wise (GPU) op?
    // Those reads force a coherence write-back when offloaded.
    let mut gpu_written: HashMap<u64, u64> = HashMap::new(); // id → bytes

    // Pass 1: find maximal runs of element-wise ops and offload each run
    // iff the bandwidth gain beats transitions + write-backs.
    let len = seq.ops.len();
    let mut i = 0;
    while i < len {
        if !seq.ops[i].pim_eligible() {
            for w in &seq.ops[i].writes {
                gpu_written.insert(w.id, w.bytes);
            }
            i += 1;
            continue;
        }
        let mut j = i;
        let mut traffic = 0u64;
        let mut flush = 0u64;
        let mut flushed_ids = HashSet::new();
        while j < len && seq.ops[j].pim_eligible() {
            traffic += seq.ops[j].bytes_read() + seq.ops[j].bytes_written();
            for r in &seq.ops[j].reads {
                if let Some(&bytes) = gpu_written.get(&r.id) {
                    if flushed_ids.insert(r.id) {
                        flush += bytes;
                    }
                }
            }
            j += 1;
        }
        let t = traffic as f64;
        let gpu_ns = t / policy.ext_bw_gbps;
        let pim_ns = t / (policy.ext_bw_gbps * policy.bw_increase);
        let overhead_ns = 2.0 * policy.transition_ns + flush as f64 / policy.ext_bw_gbps;
        let profitable = policy.ext_bw_gbps.is_infinite() || gpu_ns > pim_ns + overhead_ns;
        if profitable {
            for op in &mut seq.ops[i..j] {
                op.executor = Executor::Pim;
                stats.offloaded_ops += 1;
            }
        }
        i = j;
    }
    insert_writebacks(seq, &mut stats);
    stats
}

/// Inserts the §V-C coherence write-backs: every GPU-produced object later
/// read by a PIM kernel is flushed once, right after its producer.
/// Builders allocate objects SSA-style (one producer each), so a single
/// set of PIM-read ids suffices and the scan stays linear.
fn insert_writebacks(seq: &mut OpSequence, stats: &mut OffloadStats) {
    let pim_read_ids: HashSet<u64> = seq
        .ops
        .iter()
        .filter(|o| o.executor == Executor::Pim)
        .flat_map(|o| o.reads.iter().map(|r| r.id))
        .collect();
    let mut flushed: HashSet<u64> = HashSet::new();
    let mut out: Vec<Op> = Vec::with_capacity(seq.ops.len());
    for op in &seq.ops {
        out.push(op.clone());
        if op.executor == Executor::Gpu {
            let mut flush_bytes = 0u64;
            for w in &op.writes {
                if pim_read_ids.contains(&w.id) && flushed.insert(w.id) {
                    flush_bytes += w.bytes;
                }
            }
            if flush_bytes > 0 {
                out.push(Op::new(
                    OpKind::WriteBack { bytes: flush_bytes },
                    "coherence write-back",
                ));
                stats.writeback_bytes += flush_bytes;
            }
        }
    }
    seq.ops = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{Builder, LinTransStyle};
    use crate::params::ParamSet;

    fn lt_seq(reorder: bool) -> OpSequence {
        let mut b = Builder::new(ParamSet::paper_default());
        b.lintrans(54, 8, LinTransStyle::Hoisting, reorder)
    }

    #[test]
    fn basic_fuse_creates_paccum() {
        let mut seq = lt_seq(true);
        let before = seq.ops.len();
        fuse(&mut seq, &FusionConfig::basic_only());
        let paccum = seq
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Ew {
                        instr: PimInstruction::PAccum(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(paccum, 7, "one PAccum per rotation (K−1 = 7)");
        assert!(seq.ops.len() < before, "fusion must shrink the op count");
        // Semantics preserved: same element-wise work in the summary.
        let s = seq.summary();
        assert!(s.ew_limb_ops > 0);
    }

    #[test]
    fn basic_fuse_dedups_accumulator_traffic() {
        let mut unfused = lt_seq(true);
        let mut fused = lt_seq(true);
        fuse(&mut fused, &FusionConfig::basic_only());
        // The fused KeyMult reads each accumulator once instead of D times.
        assert!(fused.ideal_bytes() < unfused.ideal_bytes());
        let _ = &mut unfused;
    }

    #[test]
    fn aut_fuse_removes_round_trip() {
        let mut plain = lt_seq(true);
        let mut fused = lt_seq(true);
        fuse(&mut plain, &FusionConfig::basic_only());
        fuse(&mut fused, &FusionConfig::full());
        let autaccum = fused
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o.kind,
                    OpKind::Aut {
                        fused_accum: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(autaccum, 7, "one AutAccum per rotation");
        assert!(fused.ideal_bytes() < plain.ideal_bytes());
    }

    #[test]
    fn extra_fuse_cuts_gpu_elementwise_bytes() {
        let mut base = lt_seq(false);
        let mut extra = lt_seq(false);
        fuse(&mut base, &FusionConfig::basic_only());
        fuse(
            &mut extra,
            &FusionConfig {
                basic: true,
                aut: false,
                extra: true,
            },
        );
        assert!(extra.ideal_bytes() < base.ideal_bytes());
    }

    #[test]
    fn offload_marks_ew_and_inserts_writebacks() {
        let mut seq = lt_seq(true);
        fuse(&mut seq, &FusionConfig::full());
        let stats = offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        assert!(stats.offloaded_ops > 0);
        assert!(stats.writeback_bytes > 0, "ModUp outputs must be flushed");
        // Every Ew op is on PIM; NTT/BConv/Aut stay on the GPU.
        for op in &seq.ops {
            match op.kind {
                OpKind::Ew { .. } => assert_eq!(op.executor, Executor::Pim),
                OpKind::Ntt { .. } | OpKind::Intt { .. } | OpKind::BConv { .. } => {
                    assert_eq!(op.executor, Executor::Gpu)
                }
                _ => {}
            }
        }
        // The write-backs are bounded by what §V-D reports: only the
        // ModUp(a) digits (≈ D polynomials) plus small extras, far less
        // than the evk/plaintext traffic PIM eliminates.
        assert!(stats.writeback_bytes < seq.stream_bytes());
    }
}
