//! Typed errors for the Anaheim runtime.
//!
//! The scheduler absorbs transient PIM faults (bounded retries, GPU
//! fallback — see `DESIGN.md`, "Reliability & fault model"), so what
//! surfaces from [`crate::framework::Anaheim::run`] are the failures no
//! fallback can fix: configuration-level PIM errors such as an instruction
//! unsupported at the configured buffer size.

use pim::error::PimError;
use std::fmt;

/// A failure of [`crate::framework::Anaheim::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A PIM kernel failed in a way the GPU fallback cannot absorb
    /// (unsupported instruction, malformed schedule).
    Pim(PimError),
    /// A [`crate::health::HealthRegistry`] sized for a different device was
    /// attached: its bank-domain count must match the device's die groups,
    /// or breaker state would be attributed to the wrong banks.
    HealthDomainMismatch {
        /// Domains in the attached registry.
        registry: usize,
        /// Die groups on the scheduled device.
        device: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Pim(e) => write!(f, "PIM execution failed: {e}"),
            RunError::HealthDomainMismatch { registry, device } => write!(
                f,
                "health registry has {registry} bank domain(s) but the device has {device} die group(s)"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Pim(e) => Some(e),
            RunError::HealthDomainMismatch { .. } => None,
        }
    }
}

impl From<PimError> for RunError {
    fn from(e: PimError) -> Self {
        RunError::Pim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: RunError = PimError::Unsupported {
            mnemonic: "PAccum<4>".into(),
            buffer_entries: 4,
        }
        .into();
        assert_eq!(
            e.to_string(),
            "PIM execution failed: PAccum<4> unsupported with B = 4"
        );
        assert!(std::error::Error::source(&e).is_some());
    }
}
