//! Degradation policy for the PIM path: seeded retry backoff, per-bank
//! circuit breakers, and the [`HealthRegistry`] that carries both across
//! scheduler runs.
//!
//! The PR-1 retry path treated every fault the same way: a fixed number of
//! immediate retries, then GPU fallback, with no memory between kernels. A
//! production serving stack needs the opposite discipline — decide *per
//! bank, over time* whether offloading is still worth it (the paper's value
//! proposition is keeping element-wise traffic on PIM, §V–§VI, so routing
//! around a sick bank instead of abandoning PIM wholesale preserves most of
//! the win):
//!
//! - [`RetryPolicy`] — exponential backoff with deterministic jitter and a
//!   per-kernel backoff budget, replacing the hardcoded retry constant.
//!   [`RetryPolicy::fixed`] reproduces the old behaviour exactly.
//! - [`BankBreaker`] — a Closed → Open → HalfOpen circuit breaker per bank
//!   health domain (die group), keyed on integrity-check failures. Enough
//!   consecutive failures open the breaker; kernels for an open domain skip
//!   PIM and go straight to the GPU; after a cooldown the breaker half-opens
//!   and the next kernel probes the bank back to health. Hard faults (stuck
//!   MMAC lane) open the breaker permanently.
//! - [`HealthRegistry`] — the breakers plus shed/retry/fallback counters and
//!   queue-depth gauges, with an append-only transition log. Snapshots
//!   ([`HealthRegistry::snapshot`]) are plain comparable data, which is what
//!   the determinism regression tests diff across thread counts.
//!
//! Everything here is deterministic by construction: jitter comes from a
//! SplitMix64 hash of (seed, kernel index, attempt), time is the virtual
//! nanosecond clock of the scheduler, and no wall-clock or thread identity
//! ever enters a decision.

use std::fmt;

/// Retry discipline for transient PIM integrity failures.
///
/// `fixed(n)` (and `Default` via the scheduler) gives `n` immediate retries
/// with zero backoff — bit-identical to the old `MAX_PIM_RETRIES` behaviour.
/// Serving configurations use [`RetryPolicy::serving_default`], which backs
/// off exponentially with deterministic jitter and stops early when the
/// per-kernel backoff budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum PIM retries per kernel after the first failed attempt.
    pub max_retries: u32,
    /// Backoff charged to the timeline before retry 1 (ns).
    pub base_backoff_ns: f64,
    /// Backoff growth factor per additional retry.
    pub multiplier: f64,
    /// Jitter as a fraction of the computed backoff (0.0 = none). The
    /// sampled jitter is deterministic in (seed, kernel, attempt).
    pub jitter_frac: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
    /// Total backoff budget per kernel (ns); a retry whose backoff would
    /// exceed the remaining budget is abandoned in favour of GPU fallback.
    pub budget_ns: f64,
}

impl RetryPolicy {
    /// `n` immediate retries, no backoff — the legacy behaviour.
    pub fn fixed(n: u32) -> Self {
        Self {
            max_retries: n,
            base_backoff_ns: 0.0,
            multiplier: 1.0,
            jitter_frac: 0.0,
            seed: 0,
            budget_ns: f64::INFINITY,
        }
    }

    /// The serving-layer default: 3 retries, 500 ns base backoff doubling
    /// per attempt, ±25 % deterministic jitter, 10 µs budget.
    pub fn serving_default(seed: u64) -> Self {
        Self {
            max_retries: 3,
            base_backoff_ns: 500.0,
            multiplier: 2.0,
            jitter_frac: 0.25,
            seed,
            budget_ns: 10_000.0,
        }
    }

    /// Backoff before retry `attempt` (1-based) of kernel `kernel`, in ns.
    /// Deterministic: the same (policy, kernel, attempt) always yields the
    /// same value regardless of thread count or execution order.
    pub fn backoff_ns(&self, kernel: u64, attempt: u32) -> f64 {
        if self.base_backoff_ns <= 0.0 {
            return 0.0;
        }
        let raw = self.base_backoff_ns * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        let h = splitmix64(
            self.seed
                .wrapping_add(kernel.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(attempt as u64),
        );
        // Uniform in [-1, 1).
        let u = (h >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
        (raw * (1.0 + self.jitter_frac * u)).max(0.0)
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Circuit-breaker tuning shared by every bank domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive kernel-level failures (attempt exhausted or hard fault)
    /// that open the breaker.
    pub failure_threshold: u32,
    /// Initial open-state cooldown before a half-open probe (virtual ns).
    pub cooldown_ns: f64,
    /// Cooldown growth factor after each failed probe.
    pub cooldown_multiplier: f64,
    /// Upper bound on the cooldown (ns).
    pub max_cooldown_ns: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_ns: 50_000.0,
            cooldown_multiplier: 2.0,
            max_cooldown_ns: 10_000_000.0,
        }
    }
}

/// Breaker states, in the classic Closed → Open → HalfOpen cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: kernels run on PIM.
    Closed,
    /// Tripped: kernels skip PIM and run on the GPU until the cooldown
    /// elapses (or forever, for hard faults).
    Open,
    /// Probing: one kernel is allowed onto PIM; success closes the breaker,
    /// failure re-opens it with an escalated cooldown.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// One breaker state change, for the append-only transition log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// Bank health domain (die group index).
    pub bank: u32,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Virtual time of the transition (ns).
    pub at_ns: f64,
    /// What caused it: a fault cause label ("stuck-lane", "bit-flip", …),
    /// "cooldown" for Open → HalfOpen, "probe-ok" for HalfOpen → Closed.
    pub cause: &'static str,
}

/// The routing decision for one kernel on one bank domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathDecision {
    /// Breaker closed: run on PIM normally.
    Allow,
    /// Breaker half-open: run on PIM as a health probe.
    Probe,
    /// Breaker open: skip PIM, go straight to the GPU.
    Skip,
}

/// Per-domain breaker bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct BankBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// Virtual time at which an open breaker may half-open.
    open_until_ns: f64,
    /// Cooldown the *next* trip will use.
    next_cooldown_ns: f64,
    /// Hard fault observed: the breaker never half-opens again.
    permanent: bool,
    /// Times this breaker has tripped (Closed/HalfOpen → Open).
    trips: u32,
}

impl BankBreaker {
    fn new(cfg: &BreakerConfig) -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_ns: 0.0,
            next_cooldown_ns: cfg.cooldown_ns,
            permanent: false,
            trips: 0,
        }
    }
}

/// Comparable status of one bank domain, for snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankStatus {
    /// Domain index.
    pub bank: u32,
    /// Current breaker state.
    pub state: BreakerState,
    /// Consecutive failures counted towards the threshold.
    pub consecutive_failures: u32,
    /// Times the breaker tripped open.
    pub trips: u32,
    /// Whether a hard fault opened it permanently.
    pub permanent: bool,
}

/// Monotone counters across the registry's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// PIM retries taken after transient failures.
    pub pim_retries: u64,
    /// Kernels re-executed on the GPU after exhausting PIM attempts.
    pub gpu_fallbacks: u64,
    /// Kernels routed straight to the GPU because their breaker was open.
    pub breaker_skips: u64,
    /// Integrity-check failures observed.
    pub faults_detected: u64,
    /// Half-open probes attempted.
    pub probes: u64,
    /// Probes that failed (breaker re-opened).
    pub probe_failures: u64,
    /// Requests completed before their deadline (serving layer).
    pub completed: u64,
    /// Requests that missed their deadline (serving layer).
    pub deadline_misses: u64,
    /// Requests cancelled mid-flight when their deadline budget ran out
    /// (serving layer, budget propagation enabled).
    pub cancelled_over_budget: u64,
    /// Requests whose end-to-end integrity verdict failed (a corrupted
    /// result reached the output instead of being absorbed per-kernel).
    pub integrity_failures: u64,
    /// Requests shed at admission: queue full.
    pub shed_queue_full: u64,
    /// Requests shed at admission: deadline infeasible.
    pub shed_infeasible: u64,
    /// Requests submitted (admitted or shed).
    pub submitted: u64,
    /// High-water mark of the admission queue depth.
    pub max_queue_depth: u64,
}

/// A comparable, copyable view of the registry — what the determinism
/// regression tests diff across thread counts, and what `bench_json`
/// serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Per-domain breaker status.
    pub banks: Vec<BankStatus>,
    /// Lifetime counters.
    pub counters: HealthCounters,
    /// Length of the transition log.
    pub transitions: usize,
}

impl HealthSnapshot {
    /// Domains currently open (sick and routed around).
    pub fn open_banks(&self) -> usize {
        self.banks
            .iter()
            .filter(|b| b.state == BreakerState::Open)
            .count()
    }

    /// Total breaker trips across all domains.
    pub fn total_trips(&self) -> u32 {
        self.banks.iter().map(|b| b.trips).sum()
    }
}

/// Per-bank breakers + counters + transition log, persisted across
/// scheduler runs (and across serving requests).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRegistry {
    config: BreakerConfig,
    breakers: Vec<BankBreaker>,
    transitions: Vec<BreakerTransition>,
    /// Lifetime counters (scheduler- and serving-level).
    pub counters: HealthCounters,
    /// Round-robin cursor attributing kernels to domains.
    kernel_cursor: u64,
    /// Virtual-time base added to the scheduler's run-local clock, so
    /// transition timestamps are globally ordered across requests.
    base_ns: f64,
}

impl HealthRegistry {
    /// A registry with `domains` bank health domains.
    pub fn new(domains: usize, config: BreakerConfig) -> Self {
        Self {
            config,
            breakers: (0..domains).map(|_| BankBreaker::new(&config)).collect(),
            transitions: Vec::new(),
            counters: HealthCounters::default(),
            kernel_cursor: 0,
            base_ns: 0.0,
        }
    }

    /// A registry sized for a PIM device: one domain per die group.
    pub fn for_device(dev: &pim::PimDeviceConfig, config: BreakerConfig) -> Self {
        Self::new(dev.dram.geometry.die_groups, config)
    }

    /// Number of bank domains.
    pub fn domains(&self) -> usize {
        self.breakers.len()
    }

    /// The breaker configuration in force.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// The append-only transition log.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Sets the virtual-time base for subsequent scheduler runs (the
    /// serving layer sets this to each request's start time).
    pub fn set_base_ns(&mut self, base_ns: f64) {
        self.base_ns = base_ns;
    }

    /// The current virtual-time base.
    pub fn base_ns(&self) -> f64 {
        self.base_ns
    }

    /// Attributes the next PIM kernel to a domain (deterministic
    /// round-robin across the registry's lifetime).
    pub fn assign_domain(&mut self) -> u32 {
        debug_assert!(!self.breakers.is_empty());
        let d = (self.kernel_cursor % self.breakers.len() as u64) as u32;
        self.kernel_cursor += 1;
        d
    }

    /// Records a queue-depth observation (serving layer).
    pub fn note_queue_depth(&mut self, depth: usize) {
        self.counters.max_queue_depth = self.counters.max_queue_depth.max(depth as u64);
    }

    fn push_transition(
        &mut self,
        bank: u32,
        from: BreakerState,
        to: BreakerState,
        at_ns: f64,
        cause: &'static str,
    ) -> BreakerTransition {
        let t = BreakerTransition {
            bank,
            from,
            to,
            at_ns,
            cause,
        };
        self.transitions.push(t);
        t
    }

    /// Routing decision for a kernel on `bank` at local scheduler time
    /// `local_now_ns` (the registry adds its base). May emit an
    /// Open → HalfOpen transition when a cooldown has elapsed.
    pub fn decide(
        &mut self,
        bank: u32,
        local_now_ns: f64,
    ) -> (PathDecision, Option<BreakerTransition>) {
        let now = self.base_ns + local_now_ns;
        let b = &mut self.breakers[bank as usize];
        match b.state {
            BreakerState::Closed => (PathDecision::Allow, None),
            BreakerState::HalfOpen => {
                self.counters.probes += 1;
                (PathDecision::Probe, None)
            }
            BreakerState::Open => {
                if !b.permanent && now >= b.open_until_ns {
                    b.state = BreakerState::HalfOpen;
                    self.counters.probes += 1;
                    let t = self.push_transition(
                        bank,
                        BreakerState::Open,
                        BreakerState::HalfOpen,
                        now,
                        "cooldown",
                    );
                    (PathDecision::Probe, Some(t))
                } else {
                    self.counters.breaker_skips += 1;
                    (PathDecision::Skip, None)
                }
            }
        }
    }

    /// Records a kernel-level PIM success on `bank`. Closes a half-open
    /// breaker and resets the failure streak.
    pub fn on_success(&mut self, bank: u32, local_now_ns: f64) -> Option<BreakerTransition> {
        let now = self.base_ns + local_now_ns;
        let b = &mut self.breakers[bank as usize];
        b.consecutive_failures = 0;
        if b.state == BreakerState::HalfOpen {
            b.state = BreakerState::Closed;
            b.next_cooldown_ns = self.config.cooldown_ns;
            return Some(self.push_transition(
                bank,
                BreakerState::HalfOpen,
                BreakerState::Closed,
                now,
                "probe-ok",
            ));
        }
        None
    }

    /// Records a kernel-level PIM failure on `bank` (all attempts
    /// exhausted, or a hard fault). Returns the transition if the breaker
    /// tripped. `permanent` pins the breaker open with no recovery.
    pub fn on_failure(
        &mut self,
        bank: u32,
        permanent: bool,
        local_now_ns: f64,
        cause: &'static str,
    ) -> Option<BreakerTransition> {
        let now = self.base_ns + local_now_ns;
        let cfg = self.config;
        let b = &mut self.breakers[bank as usize];
        b.consecutive_failures += 1;
        let from = b.state;
        let trip = match b.state {
            BreakerState::HalfOpen => {
                self.counters.probe_failures += 1;
                true
            }
            BreakerState::Closed => permanent || b.consecutive_failures >= cfg.failure_threshold,
            BreakerState::Open => {
                // Already open (e.g. a permanent fault reported again).
                b.permanent |= permanent;
                false
            }
        };
        if !trip {
            return None;
        }
        let b = &mut self.breakers[bank as usize];
        b.state = BreakerState::Open;
        b.permanent |= permanent;
        b.trips += 1;
        b.open_until_ns = now + b.next_cooldown_ns;
        b.next_cooldown_ns =
            (b.next_cooldown_ns * cfg.cooldown_multiplier).min(cfg.max_cooldown_ns);
        Some(self.push_transition(bank, from, BreakerState::Open, now, cause))
    }

    /// Domains whose breaker is currently open (sick and routed around).
    pub fn open_domains(&self) -> usize {
        self.breakers
            .iter()
            .filter(|b| b.state == BreakerState::Open)
            .count()
    }

    /// Fraction of domains currently open, in `[0, 1]` (0.0 for an empty
    /// registry) — the shard layer's unhealthiness signal.
    pub fn open_fraction(&self) -> f64 {
        if self.breakers.is_empty() {
            0.0
        } else {
            self.open_domains() as f64 / self.breakers.len() as f64
        }
    }

    /// A comparable snapshot of the registry.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            banks: self
                .breakers
                .iter()
                .enumerate()
                .map(|(i, b)| BankStatus {
                    bank: i as u32,
                    state: b.state,
                    consecutive_failures: b.consecutive_failures,
                    trips: b.trips,
                    permanent: b.permanent,
                })
                .collect(),
            counters: self.counters,
            transitions: self.transitions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ns: 1000.0,
            cooldown_multiplier: 2.0,
            max_cooldown_ns: 8000.0,
        }
    }

    #[test]
    fn fixed_policy_has_no_backoff() {
        let p = RetryPolicy::fixed(2);
        assert_eq!(p.max_retries, 2);
        for k in 0..10 {
            for a in 1..4 {
                assert_eq!(p.backoff_ns(k, a), 0.0);
            }
        }
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let p = RetryPolicy::serving_default(7);
        let b1 = p.backoff_ns(4, 1);
        let b2 = p.backoff_ns(4, 2);
        let b3 = p.backoff_ns(4, 3);
        assert!(b1 > 0.0);
        assert!(b2 > b1, "{b2} > {b1}");
        assert!(b3 > b2, "{b3} > {b2}");
        // Jitter bounded by ±25 %.
        assert!((b1 - 500.0).abs() <= 125.0 + 1e-9);
        // Deterministic across calls; distinct across kernels.
        assert_eq!(p.backoff_ns(4, 1), b1);
        assert_ne!(p.backoff_ns(5, 1), b1);
    }

    #[test]
    fn breaker_opens_at_threshold_and_recovers_via_probe() {
        let mut reg = HealthRegistry::new(2, cfg());
        // Two failures: still closed.
        assert!(reg.on_failure(0, false, 10.0, "bit-flip").is_none());
        assert!(reg.on_failure(0, false, 20.0, "bit-flip").is_none());
        assert_eq!(reg.decide(0, 25.0).0, PathDecision::Allow);
        // Third failure trips it.
        let t = reg.on_failure(0, false, 30.0, "bit-flip").expect("trips");
        assert_eq!((t.from, t.to), (BreakerState::Closed, BreakerState::Open));
        // Open: skip until the cooldown elapses.
        assert_eq!(reg.decide(0, 31.0).0, PathDecision::Skip);
        // Other domains are unaffected.
        assert_eq!(reg.decide(1, 31.0).0, PathDecision::Allow);
        // Cooldown elapsed: half-open probe.
        let (d, t) = reg.decide(0, 1031.0);
        assert_eq!(d, PathDecision::Probe);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        // Probe succeeds: closed again, cooldown reset.
        let t = reg.on_success(0, 1040.0).expect("closes");
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(reg.decide(0, 1041.0).0, PathDecision::Allow);
        assert_eq!(reg.snapshot().total_trips(), 1);
    }

    #[test]
    fn failed_probe_escalates_cooldown() {
        let mut reg = HealthRegistry::new(1, cfg());
        for t in 0..3 {
            reg.on_failure(0, false, t as f64, "bit-flip");
        }
        // First cooldown: 1000 ns.
        assert_eq!(reg.decide(0, 500.0).0, PathDecision::Skip);
        assert_eq!(reg.decide(0, 1002.0).0, PathDecision::Probe);
        // Probe fails: re-open with doubled cooldown (2000 ns).
        let t = reg
            .on_failure(0, false, 1003.0, "bit-flip")
            .expect("reopens");
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(reg.decide(0, 2000.0).0, PathDecision::Skip);
        assert_eq!(reg.decide(0, 3004.0).0, PathDecision::Probe);
        assert_eq!(reg.counters.probe_failures, 1);
    }

    #[test]
    fn permanent_fault_never_half_opens() {
        let mut reg = HealthRegistry::new(2, cfg());
        let t = reg.on_failure(1, true, 5.0, "stuck-lane").expect("trips");
        assert_eq!(t.cause, "stuck-lane");
        // Far past any cooldown: still skipping.
        assert_eq!(reg.decide(1, 1e12).0, PathDecision::Skip);
        let snap = reg.snapshot();
        assert!(snap.banks[1].permanent);
        assert_eq!(snap.open_banks(), 1);
    }

    #[test]
    fn half_open_retrip_escalates_cooldown_to_cap_with_logged_transitions() {
        // Every probe fails. Trip at t=2 (threshold 3, failures at 0/1/2),
        // then each HalfOpen → Open re-trip doubles the cooldown until the
        // 8000 ns cap: probes at 1002, 3002, 7002, 15002 — cooldowns
        // 1000, 2000, 4000, 8000, 8000 (saturated).
        let mut reg = HealthRegistry::new(1, cfg());
        for t in 0..3 {
            reg.on_failure(0, false, t as f64, "bit-flip");
        }
        let probe_times = [1002.0, 3002.0, 7002.0, 15002.0];
        for &at in &probe_times {
            // Just before the cooldown elapses: still skipping.
            assert_eq!(reg.decide(0, at - 1.0).0, PathDecision::Skip, "t={at}");
            let (d, t) = reg.decide(0, at);
            assert_eq!(d, PathDecision::Probe);
            let t = t.expect("cooldown transition");
            assert_eq!((t.from, t.to), (BreakerState::Open, BreakerState::HalfOpen));
            assert_eq!((t.at_ns, t.cause), (at, "cooldown"));
            let t = reg.on_failure(0, false, at, "bit-flip").expect("re-trips");
            assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Open));
            assert_eq!((t.at_ns, t.cause), (at, "bit-flip"));
        }
        // Cooldown saturated at the cap: next probe window opens 8000 ns
        // after the last failed probe, not 16000.
        assert_eq!(reg.decide(0, 23_001.0).0, PathDecision::Skip);
        assert_eq!(reg.decide(0, 23_002.0).0, PathDecision::Probe);
        assert_eq!(reg.counters.probes, 5);
        assert_eq!(reg.counters.probe_failures, 4);
        // Log shape: 1 initial trip + 4 × (cooldown, re-trip) + final cooldown.
        let causes: Vec<&str> = reg.transitions().iter().map(|t| t.cause).collect();
        let mut expect = vec!["bit-flip"];
        for _ in 0..4 {
            expect.extend(["cooldown", "bit-flip"]);
        }
        expect.push("cooldown");
        assert_eq!(causes, expect);
        let snap = reg.snapshot();
        assert_eq!(snap.banks[0].trips, 5);
        assert!(!snap.banks[0].permanent);
    }

    #[test]
    fn permanent_fault_at_half_open_pins_breaker_forever() {
        // The doubling-cooldown ladder runs out of road when a probe hits a
        // hard fault: the HalfOpen → Open trip is logged with its cause and
        // the breaker never half-opens again.
        let mut reg = HealthRegistry::new(2, cfg());
        for t in 0..3 {
            reg.on_failure(0, false, t as f64, "bit-flip");
        }
        assert_eq!(reg.decide(0, 1002.0).0, PathDecision::Probe);
        let t = reg
            .on_failure(0, true, 1002.0, "stuck-lane")
            .expect("trips");
        assert_eq!((t.from, t.to), (BreakerState::HalfOpen, BreakerState::Open));
        assert_eq!(t.cause, "stuck-lane");
        // Far past every cooldown the ladder could ever reach: still open,
        // still skipping, and the skip is counted.
        let skips_before = reg.counters.breaker_skips;
        assert_eq!(reg.decide(0, 1e12).0, PathDecision::Skip);
        assert_eq!(reg.counters.breaker_skips, skips_before + 1);
        let snap = reg.snapshot();
        assert!(snap.banks[0].permanent);
        assert_eq!(snap.banks[0].trips, 2);
        // The healthy sibling keeps the fraction at one-half.
        assert_eq!(reg.open_domains(), 1);
        assert_eq!(reg.open_fraction(), 0.5);
        assert_eq!(reg.decide(1, 1e12).0, PathDecision::Allow);
    }

    #[test]
    fn open_fraction_tracks_breaker_states() {
        let mut reg = HealthRegistry::new(4, cfg());
        assert_eq!(reg.open_fraction(), 0.0);
        reg.on_failure(0, true, 0.0, "stuck-lane");
        reg.on_failure(1, true, 0.0, "stuck-lane");
        assert_eq!(reg.open_domains(), 2);
        assert_eq!(reg.open_fraction(), 0.5);
        // A half-open breaker is no longer counted as open.
        for t in 0..3 {
            reg.on_failure(2, false, t as f64, "bit-flip");
        }
        assert_eq!(reg.open_fraction(), 0.75);
        assert_eq!(reg.decide(2, 1002.0).0, PathDecision::Probe);
        assert_eq!(reg.open_fraction(), 0.5);
    }

    #[test]
    fn base_ns_offsets_transition_timestamps() {
        let mut reg = HealthRegistry::new(1, cfg());
        reg.set_base_ns(10_000.0);
        let t = reg.on_failure(0, true, 5.0, "stuck-lane").unwrap();
        assert_eq!(t.at_ns, 10_005.0);
    }

    #[test]
    fn round_robin_attribution_is_stable() {
        let mut reg = HealthRegistry::new(3, cfg());
        let seq: Vec<u32> = (0..7).map(|_| reg.assign_domain()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn snapshots_compare_field_by_field() {
        let a = HealthRegistry::new(2, cfg()).snapshot();
        let mut reg = HealthRegistry::new(2, cfg());
        reg.on_failure(0, false, 1.0, "bit-flip");
        assert_ne!(a, reg.snapshot());
        assert_eq!(a, HealthRegistry::new(2, cfg()).snapshot());
    }
}
