//! Op-sequence builders for the CKKS functions of §II and the optimized
//! flows of §III/§V: HADD, PMULT, HMULT, HROT, linear transforms
//! (baseline / hoisting / MinKS, with and without the automorphism
//! reordering of Fig. 5), and fftIter-decomposed bootstrapping.
//!
//! The emitted op streams match the functional library's instrumentation
//! ([`ckks::opcount`]) op-for-op on the key-switching structure, which the
//! integration tests verify — this is what ties the performance model to
//! the real algorithm.

use pim::isa::PimInstruction;

use crate::ir::{FuseTag, ObjAlloc, ObjKind, ObjRef, Op, OpKind, OpSequence};
use crate::params::ParamSet;

/// Linear-transform evaluation strategies (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinTransStyle {
    /// K independent HROTs (no optimization).
    Base,
    /// Shared ModUp + single hoisted ModDown (Fig. 1 right / Fig. 5).
    Hoisting,
    /// Iterated rotation by 1 with a single evk (§III-B MinKS).
    MinKS,
}

/// Builds op sequences under a parameter set.
#[derive(Debug)]
pub struct Builder {
    params: ParamSet,
    alloc: ObjAlloc,
    fuse_group: u32,
    /// Shared evk object ids for MinKS (the whole point: one evk reused).
    minks_evk: Option<Vec<(ObjRef, ObjRef)>>,
}

/// The result of a ModUp: the decomposition digit objects, reusable across
/// rotations when hoisting.
#[derive(Debug, Clone)]
struct Digits {
    objs: Vec<ObjRef>,
    level: usize,
}

impl Builder {
    /// A builder for the given parameters.
    pub fn new(params: ParamSet) -> Self {
        Self {
            params,
            alloc: ObjAlloc::new(),
            fuse_group: 0,
            minks_evk: None,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    fn next_group(&mut self) -> u32 {
        self.fuse_group += 1;
        self.fuse_group
    }

    fn poly(&mut self, kind: ObjKind, limbs: usize) -> ObjRef {
        self.alloc.fresh(kind, self.params.poly_bytes(limbs) as u64)
    }

    fn fresh_evk(&mut self, level: usize) -> Vec<(ObjRef, ObjRef)> {
        let limbs = level + self.params.alpha;
        (0..self.params.digits_at(level))
            .map(|_| {
                (
                    self.poly(ObjKind::Evk, limbs),
                    self.poly(ObjKind::Evk, limbs),
                )
            })
            .collect()
    }

    /// ModUp: INTT (shared) + per-digit BConv + NTT (§II-B).
    fn mod_up(&mut self, seq: &mut OpSequence, ct_a: ObjRef, level: usize) -> Digits {
        let p = self.params.clone();
        let coeff = self.poly(ObjKind::Temp, level);
        seq.push(
            Op::new(OpKind::Intt { limbs: level }, "ModUp INTT")
                .read(ct_a)
                .write(coeff),
        );
        let mut objs = Vec::new();
        for j in 0..p.digits_at(level) {
            let digit_len = p.alpha.min(level - j * p.alpha);
            let out_limbs = level + p.alpha - digit_len;
            let digit = self.poly(ObjKind::Temp, level + p.alpha);
            seq.push(
                Op::new(
                    OpKind::BConv {
                        src_limbs: digit_len,
                        dst_limbs: out_limbs,
                    },
                    "ModUp BConv",
                )
                .read(coeff)
                .write(digit),
            );
            seq.push(
                Op::new(OpKind::Ntt { limbs: out_limbs }, "ModUp NTT")
                    .read(digit)
                    .write(digit),
            );
            objs.push(digit);
        }
        Digits { objs, level }
    }

    /// KeyMult: per-digit `PMac` ops sharing a fusion group so BasicFuse
    /// can merge them into `PAccum⟨D⟩` (§VI-C).
    fn key_mult(
        &mut self,
        seq: &mut OpSequence,
        digits: &Digits,
        evk: &[(ObjRef, ObjRef)],
    ) -> (ObjRef, ObjRef) {
        let limbs = digits.level + self.params.alpha;
        let acc_b = self.poly(ObjKind::Temp, limbs);
        let acc_a = self.poly(ObjKind::Temp, limbs);
        let group = self.next_group();
        for (d, (kb, ka)) in digits.objs.iter().zip(evk) {
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::PMac,
                        limbs,
                    },
                    "KeyMult",
                )
                .read(*d)
                .read(*kb)
                .read(*ka)
                .read(acc_b)
                .read(acc_a)
                .write(acc_b)
                .write(acc_a)
                .fused(FuseTag::KeyMult { group }),
            );
        }
        (acc_b, acc_a)
    }

    /// ModDown of an accumulated pair back to `Q_ℓ` (§II-B); counted as
    /// one key switch.
    fn mod_down_pair(
        &mut self,
        seq: &mut OpSequence,
        acc_b: ObjRef,
        acc_a: ObjRef,
        level: usize,
    ) -> (ObjRef, ObjRef) {
        let alpha = self.params.alpha;
        seq.keyswitches += 1;
        let down = |src: ObjRef, this: &mut Self, seq: &mut OpSequence| {
            let coeff = this.poly(ObjKind::Temp, alpha);
            seq.push(
                Op::new(OpKind::Intt { limbs: alpha }, "ModDown INTT")
                    .read(src)
                    .write(coeff),
            );
            let conv = this.poly(ObjKind::Temp, level);
            seq.push(
                Op::new(
                    OpKind::BConv {
                        src_limbs: alpha,
                        dst_limbs: level,
                    },
                    "ModDown BConv",
                )
                .read(coeff)
                .write(conv),
            );
            seq.push(
                Op::new(OpKind::Ntt { limbs: level }, "ModDown NTT")
                    .read(conv)
                    .write(conv),
            );
            let out = this.poly(ObjKind::Temp, level);
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::ModDownEp,
                        limbs: level,
                    },
                    "ModDown epilogue",
                )
                .read(src)
                .read(conv)
                .write(out),
            );
            out
        };
        let b = down(acc_b, self, seq);
        let a = down(acc_a, self, seq);
        (b, a)
    }

    /// Rescale of a ciphertext pair (drops one limb per poly).
    pub fn rescale(&mut self, seq: &mut OpSequence, level: usize) {
        assert!(level > 1, "cannot rescale below one limb");
        let last = self.poly(ObjKind::Temp, 1);
        seq.push(Op::new(OpKind::Intt { limbs: 2 }, "rescale INTT").read(last));
        let rest = self.poly(ObjKind::Temp, level - 1);
        seq.push(
            Op::new(
                OpKind::Ntt {
                    limbs: 2 * (level - 1),
                },
                "rescale NTT",
            )
            .read(rest)
            .write(rest),
        );
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::ModDownEp,
                    limbs: level - 1,
                },
                "rescale fix-up",
            )
            .read(rest)
            .write(rest),
        );
    }

    /// HADD: one element-wise pass over both ciphertext polys.
    pub fn hadd(&mut self, level: usize) -> OpSequence {
        let mut seq = OpSequence::new(self.params.clone());
        let x = self.poly(ObjKind::Ciphertext, 2 * level);
        let y = self.poly(ObjKind::Ciphertext, 2 * level);
        let out = self.poly(ObjKind::Ciphertext, 2 * level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Add,
                    limbs: 2 * level,
                },
                "HADD",
            )
            .read(x)
            .read(y)
            .write(out),
        );
        seq
    }

    /// PMULT: plaintext × ciphertext (both halves), plus rescale.
    pub fn pmult(&mut self, level: usize) -> OpSequence {
        let mut seq = OpSequence::new(self.params.clone());
        let ct = self.poly(ObjKind::Ciphertext, 2 * level);
        let pt = self.poly(ObjKind::Plaintext, level);
        let out = self.poly(ObjKind::Ciphertext, 2 * level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::PMult,
                    limbs: level,
                },
                "PMULT",
            )
            .read(ct)
            .read(pt)
            .write(out),
        );
        self.rescale(&mut seq, level);
        seq
    }

    /// HMULT: tensor + relinearization + rescale (§II-A).
    pub fn hmult(&mut self, level: usize) -> OpSequence {
        let mut seq = OpSequence::new(self.params.clone());
        let x = self.poly(ObjKind::Ciphertext, 2 * level);
        let y = self.poly(ObjKind::Ciphertext, 2 * level);
        let d2 = self.poly(ObjKind::Temp, level);
        let tens = self.poly(ObjKind::Temp, 2 * level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Tensor,
                    limbs: level,
                },
                "HMULT tensor",
            )
            .read(x)
            .read(y)
            .write(tens)
            .write(d2),
        );
        let digits = self.mod_up(&mut seq, d2, level);
        let evk = self.fresh_evk(level);
        let (kb, ka) = self.key_mult(&mut seq, &digits, &evk);
        let (mb, ma) = self.mod_down_pair(&mut seq, kb, ka, level);
        let out = self.poly(ObjKind::Ciphertext, 2 * level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Add,
                    limbs: 2 * level,
                },
                "HMULT add",
            )
            .read(tens)
            .read(mb)
            .read(ma)
            .write(out),
        );
        self.rescale(&mut seq, level);
        seq
    }

    /// HROT: key switch on `a`, add `b`, automorphism last (hoisted evk
    /// form \[8\]; Fig. 1 left).
    pub fn hrot(&mut self, level: usize) -> OpSequence {
        let mut seq = OpSequence::new(self.params.clone());
        let ct_b = self.poly(ObjKind::Ciphertext, level);
        let ct_a = self.poly(ObjKind::Ciphertext, level);
        let digits = self.mod_up(&mut seq, ct_a, level);
        let evk = self.fresh_evk(level);
        let (kb, ka) = self.key_mult(&mut seq, &digits, &evk);
        let (mb, ma) = self.mod_down_pair(&mut seq, kb, ka, level);
        let sum = self.poly(ObjKind::Temp, level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Add,
                    limbs: level,
                },
                "HROT add b",
            )
            .read(ct_b)
            .read(mb)
            .write(sum),
        );
        let out = self.poly(ObjKind::Ciphertext, 2 * level);
        seq.push(
            Op::new(
                OpKind::Aut {
                    limbs: 2 * level,
                    fused_accum: false,
                },
                "HROT automorphism",
            )
            .read(sum)
            .read(ma)
            .write(out),
        );
        seq
    }

    /// A homomorphic linear transform with `k` diagonals (§III-B), in the
    /// chosen style. `reorder_aut` applies the §V-B automorphism/PMULT swap
    /// (plaintext pre-rotation), enabling the AutAccum fusion.
    pub fn lintrans(
        &mut self,
        level: usize,
        k: usize,
        style: LinTransStyle,
        reorder_aut: bool,
    ) -> OpSequence {
        match style {
            LinTransStyle::Hoisting => self.lintrans_hoisted(level, k, reorder_aut),
            LinTransStyle::MinKS => self.lintrans_minks(level, k),
            LinTransStyle::Base => self.lintrans_base(level, k),
        }
    }

    fn lintrans_hoisted(&mut self, level: usize, k: usize, reorder_aut: bool) -> OpSequence {
        let p = self.params.clone();
        let mut seq = OpSequence::new(p.clone());
        let ext = level + p.alpha;
        let ct_b = self.poly(ObjKind::Ciphertext, level);
        let ct_a = self.poly(ObjKind::Ciphertext, level);
        // Hoisting: one shared ModUp.
        let digits = self.mod_up(&mut seq, ct_a, level);
        let acc = self.poly(ObjKind::Temp, 2 * ext + level);
        for i in 0..k {
            if i == 0 {
                // Diagonal 0 needs no rotation: plain PMULT into the
                // accumulators.
                let pt = self.poly(ObjKind::Plaintext, level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::PMac,
                            limbs: level,
                        },
                        "LT diag0 PMAC",
                    )
                    .read(ct_b)
                    .read(ct_a)
                    .read(pt)
                    .read(acc)
                    .write(acc),
                );
                continue;
            }
            let evk = self.fresh_evk(level);
            let (kb, ka) = self.key_mult(&mut seq, &digits, &evk);
            // Hoisting enlarges the plaintexts to the extended modulus
            // (Fig. 1 table) — plus a Q-basis copy for the b channel.
            let pt_pq = self.poly(ObjKind::Plaintext, ext);
            let pt_q = self.poly(ObjKind::Plaintext, level);
            if reorder_aut {
                // Fig. 5: PMULT with pre-rotated plaintexts precedes the
                // automorphism, which fuses with the accumulation.
                let prod = self.poly(ObjKind::Temp, 2 * ext + level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::PMult,
                            limbs: ext,
                        },
                        "LT PMULT (PQ)",
                    )
                    .read(kb)
                    .read(ka)
                    .read(pt_pq)
                    .write(prod),
                );
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Mult,
                            limbs: level,
                        },
                        "LT PMULT b (Q)",
                    )
                    .read(ct_b)
                    .read(pt_q)
                    .write(prod),
                );
                let g = self.next_group();
                seq.push(
                    Op::new(
                        OpKind::Aut {
                            limbs: 2 * ext + level,
                            fused_accum: false,
                        },
                        "LT automorphism",
                    )
                    .read(prod)
                    .fused(FuseTag::AutThenAccum { group: g }),
                );
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Add,
                            limbs: 2 * ext + level,
                        },
                        "LT accumulate",
                    )
                    .read(prod)
                    .read(acc)
                    .write(acc)
                    .fused(FuseTag::AutThenAccum { group: g }),
                );
            } else {
                // Original order (Fig. 1): automorphism sits between
                // KeyMult/MAC and PMULT, forcing an extra round trip of the
                // rotated pair through DRAM (§V-B: 2K extra reads+writes).
                let rotated = self.poly(ObjKind::Temp, 2 * ext + level);
                seq.push(
                    Op::new(
                        OpKind::Aut {
                            limbs: 2 * ext + level,
                            fused_accum: false,
                        },
                        "LT automorphism (unreordered)",
                    )
                    .read(kb)
                    .read(ka)
                    .read(ct_b)
                    .write(rotated),
                );
                let prod = self.poly(ObjKind::Temp, 2 * ext + level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::PMult,
                            limbs: ext,
                        },
                        "LT PMULT (PQ)",
                    )
                    .read(rotated)
                    .read(pt_pq)
                    .write(prod),
                );
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Mult,
                            limbs: level,
                        },
                        "LT PMULT b (Q)",
                    )
                    .read(rotated)
                    .read(pt_q)
                    .write(prod),
                );
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Add,
                            limbs: 2 * ext + level,
                        },
                        "LT accumulate",
                    )
                    .read(prod)
                    .read(acc)
                    .write(acc),
                );
            }
        }
        // One hoisted ModDown for the accumulated pair.
        let acc_b = self.poly(ObjKind::Temp, ext);
        let acc_a = self.poly(ObjKind::Temp, ext);
        let (mb, ma) = self.mod_down_pair(&mut seq, acc_b, acc_a, level);
        let out = self.poly(ObjKind::Ciphertext, 2 * level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Add,
                    limbs: 2 * level,
                },
                "LT final add",
            )
            .read(mb)
            .read(ma)
            .read(acc)
            .write(out),
        );
        seq
    }

    fn lintrans_minks(&mut self, level: usize, k: usize) -> OpSequence {
        let p = self.params.clone();
        let mut seq = OpSequence::new(p);
        // MinKS: a single rotation-by-1 evk reused for every step (§III-B).
        if self.minks_evk.is_none() {
            self.minks_evk = Some(self.fresh_evk(level));
        }
        let evk = self.minks_evk.clone().expect("just set");
        let acc = self.poly(ObjKind::Temp, 2 * level);
        for i in 0..k {
            if i > 0 {
                // Rotate the running ciphertext by 1: a full key switch.
                let cur_a = self.poly(ObjKind::Temp, level);
                let digits = self.mod_up(&mut seq, cur_a, level);
                let (kb, ka) = self.key_mult(&mut seq, &digits, &evk);
                let (mb, _ma) = self.mod_down_pair(&mut seq, kb, ka, level);
                let sum = self.poly(ObjKind::Temp, level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Add,
                            limbs: level,
                        },
                        "MinKS add b",
                    )
                    .read(mb)
                    .write(sum),
                );
                seq.push(
                    Op::new(
                        OpKind::Aut {
                            limbs: 2 * level,
                            fused_accum: false,
                        },
                        "MinKS automorphism",
                    )
                    .read(sum)
                    .write(sum),
                );
            }
            // PMULT + accumulate in the base modulus.
            let pt = self.poly(ObjKind::Plaintext, level);
            let cur = self.poly(ObjKind::Temp, 2 * level);
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::PMac,
                        limbs: level,
                    },
                    "MinKS PMAC",
                )
                .read(cur)
                .read(pt)
                .read(acc)
                .write(acc),
            );
        }
        seq
    }

    fn lintrans_base(&mut self, level: usize, k: usize) -> OpSequence {
        let mut seq = OpSequence::new(self.params.clone());
        let acc = self.poly(ObjKind::Temp, 2 * level);
        for i in 0..k {
            if i > 0 {
                let rot = self.hrot(level);
                seq.keyswitches += rot.keyswitches;
                seq.ops.extend(rot.ops);
            }
            let pt = self.poly(ObjKind::Plaintext, level);
            let cur = self.poly(ObjKind::Temp, 2 * level);
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::PMac,
                        limbs: level,
                    },
                    "LT base PMAC",
                )
                .read(cur)
                .read(pt)
                .read(acc)
                .write(acc),
            );
        }
        seq
    }

    /// Baby-step giant-step linear transform (footnote 1: used whenever
    /// applicable, in particular inside bootstrapping): `n1` hoisted baby
    /// rotations share one ModUp; `K` cheap PMACs accumulate per giant
    /// group; each giant group is rotated once more. Cuts the evk count and
    /// the automorphism volume from `K` to `≈ 2√K`.
    pub fn lintrans_bsgs(&mut self, level: usize, k: usize, n1: usize) -> OpSequence {
        self.lintrans_bsgs_opt(level, k, n1, true)
    }

    /// BSGS with explicit control over baby-rotation hoisting: the Fig. 1
    /// "Base" column evaluates the same BSGS structure but re-runs ModUp
    /// for every baby rotation.
    pub fn lintrans_bsgs_opt(
        &mut self,
        level: usize,
        k: usize,
        n1: usize,
        hoist_babies: bool,
    ) -> OpSequence {
        assert!(n1 >= 1, "need at least one baby step");
        let p = self.params.clone();
        let mut seq = OpSequence::new(p);
        let ct_b = self.poly(ObjKind::Ciphertext, level);
        let ct_a = self.poly(ObjKind::Ciphertext, level);
        // Shared ModUp for all baby rotations (hoisting).
        let digits = self.mod_up(&mut seq, ct_a, level);
        // Baby rotations 1..n1.
        let mut babies = vec![self.poly(ObjKind::Temp, 2 * level)];
        for _ in 1..n1 {
            let digits = if hoist_babies {
                digits.clone()
            } else {
                self.mod_up(&mut seq, ct_a, level)
            };
            let evk = self.fresh_evk(level);
            let (kb, ka) = self.key_mult(&mut seq, &digits, &evk);
            let (mb, _ma) = self.mod_down_pair(&mut seq, kb, ka, level);
            let sum = self.poly(ObjKind::Temp, level);
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::Add,
                        limbs: level,
                    },
                    "BSGS baby add b",
                )
                .read(ct_b)
                .read(mb)
                .write(sum),
            );
            let rot = self.poly(ObjKind::Temp, 2 * level);
            seq.push(
                Op::new(
                    OpKind::Aut {
                        limbs: 2 * level,
                        fused_accum: false,
                    },
                    "BSGS baby automorphism",
                )
                .read(sum)
                .write(rot),
            );
            babies.push(rot);
        }
        // Inner MAC accumulations, one accumulator per giant group. Each
        // group is a Σ_b baby_b ⊙ p_b — exactly the PAccum⟨K⟩ pattern, so
        // the ops share a fusion group for BasicFuse (§VI-C).
        let giants = k.div_ceil(n1);
        let mut accs = Vec::with_capacity(giants);
        for g in 0..giants {
            let acc = self.poly(ObjKind::Temp, 2 * level);
            let in_group = n1.min(k - g * n1);
            let grp = self.next_group();
            for b in 0..in_group {
                let pt = self.poly(ObjKind::Plaintext, level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::PMac,
                            // Per-operand limb count: the PMac profile
                            // already accounts for both ciphertext halves.
                            limbs: level,
                        },
                        "BSGS inner PMAC",
                    )
                    .read(babies[b % babies.len()])
                    .read(pt)
                    .read(acc)
                    .write(acc)
                    .fused(FuseTag::KeyMult { group: grp }),
                );
            }
            accs.push(acc);
        }
        // Giant rotations (group 0 needs none) and the final accumulation.
        let out = self.poly(ObjKind::Ciphertext, 2 * level);
        for (g, acc) in accs.iter().enumerate() {
            let rotated = if g == 0 {
                *acc
            } else {
                let acc_a = self.poly(ObjKind::Temp, level);
                let gd = self.mod_up(&mut seq, acc_a, level);
                let evk = self.fresh_evk(level);
                let (kb, ka) = self.key_mult(&mut seq, &gd, &evk);
                let (mb, _ma) = self.mod_down_pair(&mut seq, kb, ka, level);
                let sum = self.poly(ObjKind::Temp, level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Add,
                            limbs: level,
                        },
                        "BSGS giant add b",
                    )
                    .read(*acc)
                    .read(mb)
                    .write(sum),
                );
                let rot = self.poly(ObjKind::Temp, 2 * level);
                let grp = self.next_group();
                seq.push(
                    Op::new(
                        OpKind::Aut {
                            limbs: 2 * level,
                            fused_accum: false,
                        },
                        "BSGS giant automorphism",
                    )
                    .read(sum)
                    .write(rot)
                    .fused(FuseTag::AutThenAccum { group: grp }),
                );
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Add,
                            limbs: 2 * level,
                        },
                        "BSGS giant accumulate",
                    )
                    .read(rot)
                    .read(out)
                    .write(out)
                    .fused(FuseTag::AutThenAccum { group: grp }),
                );
                continue;
            };
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::Add,
                        limbs: 2 * level,
                    },
                    "BSGS accumulate",
                )
                .read(rotated)
                .read(out)
                .write(out),
            );
        }
        seq
    }

    /// Full-slot bootstrapping (§II-C) with the configured fftIter
    /// decomposition: ModRaise → conj → CoeffToSlot stages → EvalMod →
    /// SlotToCoeff stages. Returns the sequence and asserts the level
    /// arithmetic lands on `l_boot_out`.
    pub fn bootstrap(&mut self) -> OpSequence {
        self.bootstrap_with_slots(self.params.slots())
    }

    /// Bootstrapping for a reduced slot count (sparse packing): the linear
    /// transforms shrink with the slot count, which is why HELR's
    /// 196-slot bootstrap is cheap and ModSwitch-dominated (§VII-B).
    pub fn bootstrap_with_slots(&mut self, slots: usize) -> OpSequence {
        let p = self.params.clone();
        let mut seq = OpSequence::new(p.clone());
        let mut level = p.l_max;

        // ModRaise: cheap data reinterpretation.
        let raised = self.poly(ObjKind::Ciphertext, 2 * level);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Move,
                    limbs: 2 * level,
                },
                "ModRaise",
            )
            .write(raised),
        );
        // Conjugation for CoeffToSlot: one key switch + automorphism.
        let conj = self.hrot(level);
        seq.keyswitches += conj.keyswitches;
        seq.ops.extend(conj.ops);

        let log_slots = (usize::BITS - 1 - slots.leading_zeros()) as usize;
        let stage_k = |iters: usize| -> usize {
            // Radix-decomposed DFT factor: ~2·radix − 1 diagonals per stage
            // (MAD [2]); fewer stages ⇒ denser factors.
            let radix_log = log_slots.div_ceil(iters);
            (2 << radix_log) - 1
        };

        // CoeffToSlot stages (BSGS-evaluated, footnote 1).
        let k_c2s = stage_k(p.fft_iter_c2s).min(2 * slots - 1);
        let n1 = |k: usize| ((k as f64).sqrt().ceil() as usize).max(1);
        for _ in 0..p.fft_iter_c2s {
            let lt = self.lintrans_bsgs(level, k_c2s, n1(k_c2s));
            seq.keyswitches += lt.keyswitches;
            seq.ops.extend(lt.ops);
            self.rescale(&mut seq, level);
            level -= p.limbs_per_level();
        }

        // EvalMod: the degree-~120 Chebyshev sine ladder (§II-C): baby
        // powers, giant doublings, and Paterson–Stockmeyer recombination —
        // ~26 key switches spread over 8 multiplicative levels, plus
        // CAccum-shaped constant leaf sums.
        let eval_mod_stages = 8usize;
        let keyswitches_per_stage = [4usize, 4, 4, 4, 3, 3, 2, 2];
        for &ks in keyswitches_per_stage.iter().take(eval_mod_stages) {
            for _ in 0..ks {
                let sq = self.poly(ObjKind::Temp, level);
                let tens = self.poly(ObjKind::Temp, 2 * level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::TensorSq,
                            limbs: level,
                        },
                        "EvalMod square",
                    )
                    .read(sq)
                    .write(tens),
                );
                let digits = self.mod_up(&mut seq, sq, level);
                let evk = self.fresh_evk(level);
                let (kb, ka) = self.key_mult(&mut seq, &digits, &evk);
                let (mb, ma) = self.mod_down_pair(&mut seq, kb, ka, level);
                let out = self.poly(ObjKind::Temp, 2 * level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::Add,
                            limbs: 2 * level,
                        },
                        "EvalMod add",
                    )
                    .read(tens)
                    .read(mb)
                    .read(ma)
                    .write(out),
                );
            }
            // Constant recombination (Chebyshev leaf sums).
            let g = self.next_group();
            let out = self.poly(ObjKind::Temp, 2 * level);
            for _ in 0..4 {
                let t = self.poly(ObjKind::Temp, 2 * level);
                seq.push(
                    Op::new(
                        OpKind::Ew {
                            instr: PimInstruction::CMac,
                            limbs: 2 * level,
                        },
                        "EvalMod const",
                    )
                    .read(t)
                    .write(out)
                    .fused(FuseTag::ConstAccum { group: g }),
                );
            }
            self.rescale(&mut seq, level);
            level -= p.limbs_per_level();
        }

        // SlotToCoeff stages.
        let k_s2c = stage_k(p.fft_iter_s2c).min(2 * slots - 1);
        for _ in 0..p.fft_iter_s2c {
            let lt = self.lintrans_bsgs(level, k_s2c, n1(k_s2c));
            seq.keyswitches += lt.keyswitches;
            seq.ops.extend(lt.ops);
            self.rescale(&mut seq, level);
            level -= p.limbs_per_level();
        }

        assert_eq!(
            level,
            p.l_max - p.limbs_per_level() * (p.fft_iter_c2s + p.fft_iter_s2c + eval_mod_stages),
            "level arithmetic must be consistent"
        );
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpKind;

    fn builder() -> Builder {
        Builder::new(ParamSet::paper_default())
    }

    #[test]
    fn hrot_structure() {
        let mut b = builder();
        let p = b.params().clone();
        let seq = b.hrot(p.l_max);
        let s = seq.summary();
        let l = p.l_max;
        let a = p.alpha;
        // ModUp: INTT l; per digit NTT (l+α−α_j); ModDown: 2×(INTT α + NTT l).
        assert_eq!(s.intt_limbs as usize, l + 2 * a);
        let ntt_modup: usize = (0..p.d).map(|j| l + a - a.min(l - j * a)).sum();
        assert_eq!(s.ntt_limbs as usize, ntt_modup + 2 * l);
        assert_eq!(s.automorphism_limbs as usize, 2 * l);
        assert_eq!(seq.keyswitches, 1);
    }

    #[test]
    fn hoisting_shares_modup_and_moddown() {
        let mut b = builder();
        let p = b.params().clone();
        let k = 8;
        let hoist = b.lintrans(p.l_max, k, LinTransStyle::Hoisting, true);
        let mut b2 = builder();
        let base = b2.lintrans(p.l_max, k, LinTransStyle::Base, false);
        // Hoisting: 1 ModUp + 1 ModDown; Base: K−1 of each.
        assert_eq!(hoist.keyswitches, 1);
        assert_eq!(base.keyswitches, (k - 1) as u64);
        let sh = hoist.summary();
        let sb = base.summary();
        assert!(
            sb.total_ntt_limbs() as f64 / sh.total_ntt_limbs() as f64 > 2.0,
            "hoisting must cut (I)NTT work > 2× (Fig. 1 reports 2.47×): {} vs {}",
            sb.total_ntt_limbs(),
            sh.total_ntt_limbs()
        );
        // ...but hoisting shifts the mix toward element-wise ops (§IV-B).
        let hoist_ratio = sh.ew_limb_ops as f64 / sh.total_ntt_limbs() as f64;
        let base_ratio = sb.ew_limb_ops as f64 / sb.total_ntt_limbs() as f64;
        assert!(hoist_ratio > 1.5 * base_ratio);
    }

    #[test]
    fn minks_reuses_one_evk() {
        let mut b = builder();
        let p = b.params().clone();
        let seq = b.lintrans(p.l_max, 8, LinTransStyle::MinKS, false);
        // All KeyMult reads must reference the same evk objects.
        let mut evk_ids = std::collections::HashSet::new();
        for op in &seq.ops {
            if matches!(op.fuse, Some(FuseTag::KeyMult { .. })) {
                for r in &op.reads {
                    if matches!(r.kind, crate::ir::ObjKind::Evk) {
                        evk_ids.insert(r.id);
                    }
                }
            }
        }
        assert_eq!(
            evk_ids.len(),
            2 * p.d,
            "MinKS uses exactly one evk (2·D polynomials)"
        );
        // Hoisting with K=8 uses 7 distinct evks (4× more, Fig. 1 table).
        let mut b2 = builder();
        let hoist = b2.lintrans(p.l_max, 8, LinTransStyle::Hoisting, true);
        let mut hoist_ids = std::collections::HashSet::new();
        for op in &hoist.ops {
            for r in &op.reads {
                if matches!(r.kind, crate::ir::ObjKind::Evk) {
                    hoist_ids.insert(r.id);
                }
            }
        }
        assert_eq!(hoist_ids.len(), 7 * 2 * p.d);
    }

    #[test]
    fn reordering_removes_extra_automorphism_traffic() {
        let mut b = builder();
        let p = b.params().clone();
        let with = b.lintrans(p.l_max, 8, LinTransStyle::Hoisting, true);
        let mut b2 = builder();
        let without = b2.lintrans(p.l_max, 8, LinTransStyle::Hoisting, false);
        // Same compute...
        assert_eq!(
            with.summary().total_ntt_limbs(),
            without.summary().total_ntt_limbs()
        );
        assert_eq!(
            with.summary().automorphism_limbs,
            without.summary().automorphism_limbs
        );
        // ...but the unreordered flow moves more bytes (the 2K extra
        // reads/writes of §V-B appear as the rotated temp round trip).
        assert!(without.ideal_bytes() > with.ideal_bytes());
        // And only the reordered flow exposes AutAccum fusion tags.
        let tags = |s: &OpSequence| {
            s.ops
                .iter()
                .filter(|o| matches!(o.fuse, Some(FuseTag::AutThenAccum { .. })))
                .count()
        };
        assert!(tags(&with) > 0);
        assert_eq!(tags(&without), 0);
    }

    #[test]
    fn bootstrap_level_arithmetic() {
        let mut b = builder();
        let seq = b.bootstrap();
        assert!(!seq.is_empty());
        // 4 + 3 lintrans stages + 8 EvalMod stages at 2 limbs each: 54 → 24.
        let p = ParamSet::paper_default();
        assert_eq!(p.l_max - 2 * (4 + 3 + 8), p.l_boot_out);
        assert!(seq.keyswitches > 10);
    }

    #[test]
    fn sparse_bootstrap_is_smaller() {
        let mut b = builder();
        let full = b.bootstrap();
        let mut b2 = builder();
        let sparse = b2.bootstrap_with_slots(256);
        assert!(
            sparse.ideal_bytes() < full.ideal_bytes(),
            "sparse-slot bootstrap must be cheaper"
        );
        assert!(sparse.summary().ew_limb_ops < full.summary().ew_limb_ops);
    }

    #[test]
    fn hmult_contains_tensor_and_keyswitch() {
        let mut b = builder();
        let p = b.params().clone();
        let seq = b.hmult(p.l_max);
        assert_eq!(seq.keyswitches, 1);
        assert!(seq.ops.iter().any(|o| matches!(
            o.kind,
            OpKind::Ew {
                instr: PimInstruction::Tensor,
                ..
            }
        )));
    }
}
