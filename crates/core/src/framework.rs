//! The top-level Anaheim framework API (§V-C, Fig. 4a): bundles a GPU
//! model, an optional PIM device, and the fusion pipeline into a single
//! `run(sequence) → report` entry point — the programmer-facing layer the
//! paper describes ("programmers can write a simple high-level code, which
//! will be translated into appropriate GPU kernels, API calls, and PIM
//! kernels").

use gpu::config::{GpuConfig, LibraryProfile};
use gpu::model::GpuModel;
use pim::device::PimDeviceConfig;
use pim::fault::FaultPlan;
use pim::layout::LayoutPolicy;

use crate::error::RunError;
use crate::health::{HealthRegistry, RetryPolicy};
use crate::ir::OpSequence;
use crate::passes::{fuse, offload_measured, FusionConfig};
use crate::report::ExecutionReport;
use crate::schedule::{footprint_bytes, ScheduleMode, Scheduler, MAX_PIM_RETRIES};
use crate::telemetry::Telemetry;

/// Whether the PIM devices participate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Baseline: everything on the GPU.
    GpuOnly,
    /// Anaheim: element-wise blocks offloaded to PIM.
    GpuWithPim,
}

/// A complete platform configuration.
#[derive(Debug, Clone)]
pub struct AnaheimConfig {
    /// Configuration name for reports.
    pub name: &'static str,
    /// GPU hardware.
    pub gpu: GpuConfig,
    /// FHE library profile.
    pub library: LibraryProfile,
    /// PIM device (used in [`ExecMode::GpuWithPim`]).
    pub pim: Option<PimDeviceConfig>,
    /// PIM data layout.
    pub layout: LayoutPolicy,
    /// Fusion pipeline.
    pub fusion: FusionConfig,
    /// Execution mode.
    pub mode: ExecMode,
    /// Fault-injection plan for the PIM path (`None` = fault-free).
    pub fault: Option<FaultPlan>,
    /// Retry discipline for transient PIM failures.
    pub retry: RetryPolicy,
    /// Timeline discipline: serial handoffs (the paper's design, default)
    /// or two overlapped virtual streams.
    pub schedule: ScheduleMode,
}

impl AnaheimConfig {
    /// GPU-only Cheddar baseline on A100 (the paper's primary baseline).
    pub fn a100_baseline() -> Self {
        Self {
            name: "A100 (GPU only)",
            gpu: GpuConfig::a100_80gb(),
            library: LibraryProfile::cheddar(),
            pim: None,
            layout: LayoutPolicy::ColumnPartitioned,
            fusion: FusionConfig::gpu_baseline(),
            mode: ExecMode::GpuOnly,
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
            schedule: ScheduleMode::Serial,
        }
    }

    /// Anaheim on A100 with near-bank PIM.
    pub fn a100_near_bank() -> Self {
        Self {
            name: "A100 + near-bank PIM",
            gpu: GpuConfig::a100_80gb(),
            library: LibraryProfile::cheddar(),
            pim: Some(PimDeviceConfig::a100_near_bank()),
            layout: LayoutPolicy::ColumnPartitioned,
            fusion: FusionConfig::full(),
            mode: ExecMode::GpuWithPim,
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
            schedule: ScheduleMode::Serial,
        }
    }

    /// Attaches a fault-injection plan: PIM kernels run under injected
    /// faults and degrade to the GPU when integrity checks fail.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Overrides the retry discipline for transient PIM failures.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Selects the timeline discipline ([`ScheduleMode::Serial`] by
    /// default; [`ScheduleMode::Pipelined`] overlaps independent GPU/PIM
    /// work across two virtual streams).
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        self.schedule = mode;
        self
    }

    /// Anaheim on A100 with custom-HBM PIM.
    pub fn a100_custom_hbm() -> Self {
        Self {
            name: "A100 + custom-HBM PIM",
            pim: Some(PimDeviceConfig::a100_custom_hbm()),
            ..Self::a100_near_bank()
        }
    }

    /// GPU-only baseline on RTX 4090.
    pub fn rtx4090_baseline() -> Self {
        Self {
            name: "RTX 4090 (GPU only)",
            gpu: GpuConfig::rtx4090(),
            ..Self::a100_baseline()
        }
    }

    /// Anaheim on RTX 4090 with near-bank PIM.
    pub fn rtx4090_near_bank() -> Self {
        Self {
            name: "RTX 4090 + near-bank PIM",
            gpu: GpuConfig::rtx4090(),
            pim: Some(PimDeviceConfig::rtx4090_near_bank()),
            ..Self::a100_near_bank()
        }
    }

    /// The hypothetical 4×-bandwidth A100 of Fig. 4a.
    pub fn a100_4x_bandwidth() -> Self {
        Self {
            name: "A100 (4x BW, hypothetical)",
            gpu: GpuConfig::a100_4x_bandwidth(),
            ..Self::a100_baseline()
        }
    }

    /// The three Anaheim configurations evaluated in Fig. 8.
    pub fn anaheim_all() -> Vec<AnaheimConfig> {
        vec![
            Self::a100_near_bank(),
            Self::a100_custom_hbm(),
            Self::rtx4090_near_bank(),
        ]
    }
}

/// Result of a capacity check (§VIII-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityCheck {
    /// The workload fits in GPU DRAM.
    Fits {
        /// Estimated footprint in bytes.
        footprint: u64,
    },
    /// Out of memory: the RTX 4090 cases of Fig. 8 / Table V.
    OutOfMemory {
        /// Estimated footprint in bytes.
        footprint: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
}

/// The Anaheim runtime.
#[derive(Debug)]
pub struct Anaheim {
    config: AnaheimConfig,
    model: GpuModel,
}

impl Anaheim {
    /// Builds the runtime for a platform configuration.
    pub fn new(config: AnaheimConfig) -> Self {
        let model = GpuModel::new(config.gpu.clone(), config.library);
        Self { config, model }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnaheimConfig {
        &self.config
    }

    /// The GPU performance model built from the configuration.
    pub fn model(&self) -> &GpuModel {
        &self.model
    }

    /// Checks whether a sequence's data fits the device (§VIII-B).
    pub fn check_capacity(&self, seq: &OpSequence) -> CapacityCheck {
        let footprint = footprint_bytes(seq);
        let capacity = self.config.gpu.dram_capacity_bytes as u64;
        if footprint <= capacity {
            CapacityCheck::Fits { footprint }
        } else {
            CapacityCheck::OutOfMemory {
                footprint,
                capacity,
            }
        }
    }

    /// Runs a sequence: applies the configured fusion pipeline, offloads to
    /// PIM when enabled, and schedules.
    ///
    /// Integrity-check failures under a configured fault plan are absorbed
    /// by retry/GPU-fallback and recorded in the report; only failures no
    /// fallback can fix (e.g. an unsupported PIM instruction) surface as
    /// [`RunError`].
    ///
    /// ```
    /// use anaheim_core::build::{Builder, LinTransStyle};
    /// use anaheim_core::framework::{Anaheim, AnaheimConfig};
    /// use anaheim_core::params::ParamSet;
    ///
    /// let mut b = Builder::new(ParamSet::paper_default());
    /// let seq = b.lintrans(54, 8, LinTransStyle::Hoisting, true);
    ///
    /// let anaheim = Anaheim::new(AnaheimConfig::a100_near_bank());
    /// let report = anaheim.run(seq).expect("paper-scale lintrans runs");
    /// assert!(report.total_ns > 0.0);
    /// assert!(report.pim_dram_bytes > 0, "element-wise blocks ran on PIM");
    /// ```
    pub fn run(&self, mut seq: OpSequence) -> Result<ExecutionReport, RunError> {
        fuse(&mut seq, &self.config.fusion);
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => {
                offload_measured(
                    &mut seq,
                    &self.model,
                    dev,
                    self.config.layout,
                    crate::schedule::TRANSITION_NS,
                );
                self.pim_scheduler(dev).run(&seq)
            }
            _ => Scheduler::gpu_only(&self.model).run(&seq),
        }
    }

    /// [`run`](Self::run) with telemetry: the schedule is additionally
    /// recorded into `tel` as virtual-time spans and metrics.
    ///
    /// ```
    /// use anaheim_core::build::{Builder, LinTransStyle};
    /// use anaheim_core::framework::{Anaheim, AnaheimConfig};
    /// use anaheim_core::params::ParamSet;
    /// use anaheim_core::telemetry::Telemetry;
    ///
    /// let mut b = Builder::new(ParamSet::paper_default());
    /// let seq = b.lintrans(54, 8, LinTransStyle::Hoisting, true);
    /// let mut tel = Telemetry::new(42);
    /// Anaheim::new(AnaheimConfig::a100_near_bank())
    ///     .run_traced(seq, &mut tel)
    ///     .expect("runs");
    /// assert!(!tel.trace.is_empty());
    /// assert!(tel.chrome_trace().contains("\"traceEvents\""));
    /// ```
    pub fn run_traced(
        &self,
        mut seq: OpSequence,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        fuse(&mut seq, &self.config.fusion);
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => {
                offload_measured(
                    &mut seq,
                    &self.model,
                    dev,
                    self.config.layout,
                    crate::schedule::TRANSITION_NS,
                );
                self.pim_scheduler(dev).run_traced(&seq, tel)
            }
            _ => Scheduler::gpu_only(&self.model).run_traced(&seq, tel),
        }
    }

    /// Runs a sequence without applying any passes (for ablations that
    /// prepare the sequence manually).
    pub fn run_prepared(&self, seq: &OpSequence) -> Result<ExecutionReport, RunError> {
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => self.pim_scheduler(dev).run(seq),
            _ => Scheduler::gpu_only(&self.model).run(seq),
        }
    }

    /// [`run_prepared`](Self::run_prepared) with telemetry.
    pub fn run_prepared_traced(
        &self,
        seq: &OpSequence,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => self.pim_scheduler(dev).run_traced(seq, tel),
            _ => Scheduler::gpu_only(&self.model).run_traced(seq, tel),
        }
    }

    /// Like [`Anaheim::run_prepared`], but breaker-gated through the given
    /// [`HealthRegistry`]. The sequence must already be fused/offloaded —
    /// the serving layer prepares requests in parallel and then schedules
    /// them serially through this entry point.
    pub fn run_prepared_with_health(
        &self,
        seq: &OpSequence,
        registry: &mut HealthRegistry,
    ) -> Result<ExecutionReport, RunError> {
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => {
                self.pim_scheduler(dev).run_with_health(seq, registry)
            }
            _ => Scheduler::gpu_only(&self.model).run(seq),
        }
    }

    /// [`run_prepared_with_health`](Self::run_prepared_with_health) with
    /// telemetry — the serving layer's traced dispatch path.
    pub fn run_prepared_with_health_traced(
        &self,
        seq: &OpSequence,
        registry: &mut HealthRegistry,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => self
                .pim_scheduler(dev)
                .run_with_health_traced(seq, registry, tel),
            _ => Scheduler::gpu_only(&self.model).run_traced(seq, tel),
        }
    }

    /// Prepares a sequence for [`Anaheim::run_prepared_with_health`]:
    /// applies the configured fusion pipeline and, in PIM mode, the
    /// measured offload pass. Pure — safe to run in parallel across
    /// requests.
    pub fn prepare(&self, seq: &mut OpSequence) {
        fuse(seq, &self.config.fusion);
        if let (ExecMode::GpuWithPim, Some(dev)) = (self.config.mode, &self.config.pim) {
            offload_measured(
                seq,
                &self.model,
                dev,
                self.config.layout,
                crate::schedule::TRANSITION_NS,
            );
        }
    }

    /// Like [`Anaheim::run`], but with per-bank circuit breaking driven by
    /// (and feeding back into) the given [`HealthRegistry`]. The registry
    /// persists across calls — this is the entry point the serving layer
    /// uses so one request's faults inform the routing of the next.
    pub fn run_with_health(
        &self,
        mut seq: OpSequence,
        registry: &mut HealthRegistry,
    ) -> Result<ExecutionReport, RunError> {
        fuse(&mut seq, &self.config.fusion);
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => {
                offload_measured(
                    &mut seq,
                    &self.model,
                    dev,
                    self.config.layout,
                    crate::schedule::TRANSITION_NS,
                );
                self.pim_scheduler(dev).run_with_health(&seq, registry)
            }
            _ => Scheduler::gpu_only(&self.model).run(&seq),
        }
    }

    /// [`run_with_health`](Self::run_with_health) with telemetry.
    pub fn run_with_health_traced(
        &self,
        mut seq: OpSequence,
        registry: &mut HealthRegistry,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        fuse(&mut seq, &self.config.fusion);
        match (self.config.mode, &self.config.pim) {
            (ExecMode::GpuWithPim, Some(dev)) => {
                offload_measured(
                    &mut seq,
                    &self.model,
                    dev,
                    self.config.layout,
                    crate::schedule::TRANSITION_NS,
                );
                self.pim_scheduler(dev)
                    .run_with_health_traced(&seq, registry, tel)
            }
            _ => Scheduler::gpu_only(&self.model).run_traced(&seq, tel),
        }
    }

    fn pim_scheduler<'a>(&'a self, dev: &'a PimDeviceConfig) -> Scheduler<'a> {
        let mut s = Scheduler::with_pim(&self.model, dev, self.config.layout)
            .with_retry_policy(self.config.retry)
            .with_mode(self.config.schedule);
        if let Some(plan) = self.config.fault {
            s = s.with_fault_plan(plan);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use crate::params::ParamSet;

    #[test]
    fn bootstrap_speedup_in_paper_range() {
        // Fig. 8 Boot: 1.24–1.74× on A100 near-bank. We accept a slightly
        // wider modeling band here; the figure harness reports the exact
        // value.
        let mut b = Builder::new(ParamSet::paper_default());
        let seq = b.bootstrap();
        let base = Anaheim::new(AnaheimConfig::a100_baseline())
            .run(seq.clone())
            .unwrap();
        let pim = Anaheim::new(AnaheimConfig::a100_near_bank())
            .run(seq)
            .unwrap();
        let speedup = base.total_ns / pim.total_ns;
        assert!(
            (1.05..2.5).contains(&speedup),
            "A100 near-bank bootstrap speedup out of band: {speedup:.2}"
        );
        // EDP must improve by more than the speedup (energy also drops).
        let edp_gain = base.edp() / pim.edp();
        assert!(edp_gain > speedup, "EDP gain {edp_gain:.2} vs {speedup:.2}");
    }

    #[test]
    fn elementwise_fraction_matches_fig2b() {
        // Fig. 2b: element-wise ops are 45–48% of bootstrapping on A100
        // and 68–69% on RTX 4090 (the paper's central observation).
        let mut b = Builder::new(ParamSet::paper_default());
        let seq = b.bootstrap();
        let a100 = Anaheim::new(AnaheimConfig::a100_baseline())
            .run(seq.clone())
            .unwrap();
        let f_a100 = a100.fraction("element-wise");
        assert!(
            (0.35..0.60).contains(&f_a100),
            "A100 element-wise share ≈ 45-48%, got {:.0}%",
            100.0 * f_a100
        );
        let g = Anaheim::new(AnaheimConfig::rtx4090_baseline())
            .run(seq)
            .unwrap();
        let f_4090 = g.fraction("element-wise");
        assert!(
            f_4090 > f_a100,
            "share must be higher on the 4090 (Fig. 2b): {:.0}% vs {:.0}%",
            100.0 * f_4090,
            100.0 * f_a100
        );
    }

    #[test]
    fn capacity_check_flags_oversized_workloads() {
        let mut b = Builder::new(ParamSet::paper_default());
        let seq = b.bootstrap();
        let a100 = Anaheim::new(AnaheimConfig::a100_baseline());
        assert!(matches!(
            a100.check_capacity(&seq),
            CapacityCheck::Fits { .. }
        ));
    }

    #[test]
    fn fault_plan_degrades_but_completes() {
        let mut b = Builder::new(ParamSet::paper_default());
        let seq = b.bootstrap();
        let cfg = AnaheimConfig::a100_near_bank()
            .with_fault_plan(FaultPlan::none().with_seed(17).with_bank_flips(0.5));
        let r = Anaheim::new(cfg).run(seq).unwrap();
        assert!(r.faults_detected > 0, "flips at p=0.5 must fire");
        assert!(r.degraded_segments > 0);
        assert!(r.total_ns > 0.0);
    }

    #[test]
    fn pipelined_schedule_mode_threads_through_framework() {
        let mut b = Builder::new(ParamSet::paper_default());
        let seq = b.bootstrap();
        let serial = Anaheim::new(AnaheimConfig::a100_near_bank())
            .run(seq.clone())
            .unwrap();
        let cfg = AnaheimConfig::a100_near_bank().with_schedule_mode(ScheduleMode::Pipelined);
        let pipe = Anaheim::new(cfg).run(seq).unwrap();
        let speedup = serial.total_ns / pipe.total_ns;
        assert!(
            speedup > 1.0 && speedup <= 1.35,
            "§V-C band violated through the framework: {speedup:.4}x"
        );
        assert!(pipe.stream_overlap_ns > 0.0);
    }

    #[test]
    fn config_presets_have_distinct_names() {
        let mut names = std::collections::HashSet::new();
        for c in [
            AnaheimConfig::a100_baseline(),
            AnaheimConfig::a100_near_bank(),
            AnaheimConfig::a100_custom_hbm(),
            AnaheimConfig::rtx4090_baseline(),
            AnaheimConfig::rtx4090_near_bank(),
            AnaheimConfig::a100_4x_bandwidth(),
        ] {
            assert!(names.insert(c.name), "duplicate name {}", c.name);
        }
    }
}
