//! The stream-ordered GPU↔PIM scheduler (§V-C).
//!
//! Ops execute in issue order: GPU kernels run through the roofline model
//! with the object-granularity L2 filtering DRAM traffic; consecutive PIM
//! ops coalesce into one PIM kernel (large granularity, hundreds of µs);
//! each GPU↔PIM transition pays the stream-queue handoff of ~2 µs, which
//! §V-C shows is negligible at PIM-kernel granularity.
//!
//! With a [`FaultPlan`] attached, every PIM kernel runs under fault
//! injection and its post-kernel integrity check can fail. The scheduler
//! then degrades gracefully instead of propagating the failure: transient
//! faults get up to [`MAX_PIM_RETRIES`] PIM retries, hard faults (a stuck
//! MMAC lane) permanently disable the PIM path, and whatever still fails
//! re-executes on the GPU. Every wasted attempt and GPU re-execution is
//! charged to the timeline and recorded as a degraded segment.

use gpu::cache::L2Cache;
use gpu::kernel::{KernelClass, KernelDesc};
use gpu::model::GpuModel;
use pim::device::PimDeviceConfig;
use pim::error::PimError;
use pim::exec::{PimExecutor, PimKernelSpec};
use pim::fault::{FaultInjector, FaultPlan};
use pim::layout::LayoutPolicy;

use crate::error::RunError;
use crate::ir::{Executor, ObjKind, Op, OpKind, OpSequence};
use crate::report::{ExecutionReport, GanttSegment};

/// GPU↔PIM transition cost (§V-C: "a couple of microseconds").
pub const TRANSITION_NS: f64 = 2000.0;

/// PIM retries granted to a kernel after transient integrity failures
/// before it falls back to the GPU.
pub const MAX_PIM_RETRIES: u32 = 2;

/// Scheduler binding the execution engines.
#[derive(Debug)]
pub struct Scheduler<'a> {
    gpu: &'a GpuModel,
    pim: Option<(&'a PimDeviceConfig, LayoutPolicy)>,
    fault: Option<FaultPlan>,
}

impl<'a> Scheduler<'a> {
    /// GPU-only scheduling.
    pub fn gpu_only(gpu: &'a GpuModel) -> Self {
        Self {
            gpu,
            pim: None,
            fault: None,
        }
    }

    /// GPU + PIM co-execution.
    pub fn with_pim(gpu: &'a GpuModel, dev: &'a PimDeviceConfig, layout: LayoutPolicy) -> Self {
        Self {
            gpu,
            pim: Some((dev, layout)),
            fault: None,
        }
    }

    /// Attaches a fault plan: PIM kernels run under fault injection and
    /// degrade to the GPU when their integrity checks fail.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Integer ops a GPU kernel of this kind executes (one modmul ≈ 8
    /// 32-bit mul-adds plus surrounding adds, §III-A D2).
    fn int_ops(&self, kind: &OpKind, n: u64) -> u64 {
        match *kind {
            OpKind::Ntt { limbs } | OpKind::Intt { limbs } => {
                let log_n = 63 - n.leading_zeros() as u64;
                limbs as u64 * (n / 2) * log_n * 10
            }
            OpKind::BConv {
                src_limbs,
                dst_limbs,
            } => n * src_limbs as u64 * dst_limbs as u64 * 6,
            OpKind::Ew { instr, limbs } => {
                n * limbs as u64 * instr.mmac_ops_per_element() as u64 * 6
            }
            OpKind::Aut { .. } | OpKind::WriteBack { .. } => 0,
        }
    }

    fn kernel_class(kind: &OpKind) -> (&'static str, KernelClass) {
        match kind {
            OpKind::Ntt { .. } | OpKind::Intt { .. } => ("(I)NTT", KernelClass::Ntt),
            OpKind::BConv { .. } => ("BConv", KernelClass::BConv),
            OpKind::Ew { .. } => ("element-wise", KernelClass::ElementWise),
            OpKind::Aut { .. } => ("automorphism", KernelClass::Automorphism),
            OpKind::WriteBack { .. } => ("write-back", KernelClass::WriteBack),
        }
    }

    /// Runs the sequence and produces a report.
    ///
    /// Fails only on errors no fallback can absorb (e.g. a PIM instruction
    /// unsupported at the configured buffer size); integrity-check failures
    /// under an attached [`FaultPlan`] are handled by retry/degradation and
    /// recorded in the report instead.
    pub fn run(&self, seq: &OpSequence) -> Result<ExecutionReport, RunError> {
        let n = seq.params.n() as u64;
        let mut report = ExecutionReport::default();
        let mut cache = L2Cache::new(self.gpu.config().l2_bytes);
        let mut now = 0.0f64;
        let mut last_exec = Executor::Gpu;
        let mut pim_batch: Vec<(PimKernelSpec, &'static str)> = Vec::new();
        let mut injector = self.fault.map(FaultInjector::new);
        let mut pim_disabled = false;

        for op in &seq.ops {
            let target = if self.pim.is_some() && !pim_disabled {
                op.executor
            } else {
                Executor::Gpu
            };
            match target {
                Executor::Pim => {
                    let (instr, limbs) = match op.kind {
                        OpKind::Ew { instr, limbs } => (instr, limbs),
                        _ => unreachable!("only element-wise ops are offloaded"),
                    };
                    if last_exec != Executor::Pim {
                        now += TRANSITION_NS;
                        report.transitions += 1;
                        last_exec = Executor::Pim;
                    }
                    pim_batch.push((
                        PimKernelSpec {
                            instr,
                            limbs,
                            n: n as usize,
                        },
                        op.label,
                    ));
                }
                Executor::Gpu => {
                    if last_exec != Executor::Gpu {
                        // Drain the queued PIM kernels first.
                        if let Some(pim) = self.pim {
                            self.flush_pim(
                                &mut pim_batch,
                                &mut now,
                                &mut report,
                                pim,
                                &mut injector,
                                &mut pim_disabled,
                            )?;
                        }
                        now += TRANSITION_NS;
                        report.transitions += 1;
                        last_exec = Executor::Gpu;
                    }
                    let (class_label, class) = Self::kernel_class(&op.kind);
                    let desc = self.describe_gpu_op(op, n, class, &mut cache);
                    let cost = self.gpu.cost(&desc);
                    report.gpu_dram_bytes += desc.dram_bytes();
                    report.energy_j += cost.energy_j;
                    let start = now;
                    now += cost.time_ns;
                    report.push_segment(GanttSegment {
                        start_ns: start,
                        end_ns: now,
                        executor: Executor::Gpu,
                        class: class_label,
                        label: op.label,
                        degraded: false,
                    });
                }
            }
        }
        if let Some(pim) = self.pim {
            self.flush_pim(
                &mut pim_batch,
                &mut now,
                &mut report,
                pim,
                &mut injector,
                &mut pim_disabled,
            )?;
        }
        report.total_ns = now;
        Ok(report)
    }

    /// Drains queued PIM kernels: executes each (under fault injection when
    /// configured), retries transient integrity failures, and re-executes
    /// on the GPU what PIM cannot complete.
    fn flush_pim(
        &self,
        batch: &mut Vec<(PimKernelSpec, &'static str)>,
        now: &mut f64,
        report: &mut ExecutionReport,
        pim: (&PimDeviceConfig, LayoutPolicy),
        injector: &mut Option<FaultInjector>,
        pim_disabled: &mut bool,
    ) -> Result<(), RunError> {
        if batch.is_empty() {
            return Ok(());
        }
        let exec = PimExecutor::new(pim.0, pim.1);
        for (spec, label) in batch.drain(..) {
            if *pim_disabled {
                // A prior hard fault took the PIM path out; the rest of
                // the batch re-executes on the GPU.
                self.fallback_on_gpu(&exec, &spec, label, now, report);
                continue;
            }
            let mut retries = 0u32;
            loop {
                let outcome = match injector.as_mut() {
                    Some(inj) => exec.execute_with_faults(&spec, inj),
                    None => exec.execute(&spec),
                };
                match outcome {
                    Ok(r) => {
                        let start = *now;
                        *now += r.latency_ns;
                        report.energy_j += r.energy_joules(pim.0);
                        report.pim_dram_bytes += r.bytes_internal;
                        report.push_segment(GanttSegment {
                            start_ns: start,
                            end_ns: *now,
                            executor: Executor::Pim,
                            class: "element-wise",
                            label,
                            degraded: false,
                        });
                        break;
                    }
                    Err(PimError::IntegrityViolation(violation)) => {
                        report.faults_detected += 1;
                        // The failed attempt still burned time and energy.
                        let start = *now;
                        *now += violation.wasted.latency_ns;
                        report.energy_j += violation.wasted.energy_joules(pim.0);
                        report.pim_dram_bytes += violation.wasted.bytes_internal;
                        report.push_segment(GanttSegment {
                            start_ns: start,
                            end_ns: *now,
                            executor: Executor::Pim,
                            class: "element-wise",
                            label,
                            degraded: true,
                        });
                        if violation.is_permanent() {
                            // Hard fault (stuck MMAC lane): retrying on PIM
                            // cannot succeed — disable the path for good.
                            *pim_disabled = true;
                        } else if retries < MAX_PIM_RETRIES {
                            retries += 1;
                            report.pim_retries += 1;
                            continue;
                        }
                        self.fallback_on_gpu(&exec, &spec, label, now, report);
                        break;
                    }
                    Err(e) => return Err(RunError::Pim(e)),
                }
            }
        }
        Ok(())
    }

    /// Re-executes a failed PIM kernel on the GPU. The operands are
    /// PIM-resident, so the kernel streams everything through DRAM with no
    /// L2 reuse, and the re-dispatch pays one PIM→GPU handoff.
    fn fallback_on_gpu(
        &self,
        exec: &PimExecutor<'_>,
        spec: &PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
    ) {
        *now += TRANSITION_NS;
        report.transitions += 1;
        let p = spec.instr.profile();
        let dram_read = (p.total_reads() * spec.limbs * spec.n * 4) as u64;
        let dram_write = exec.gpu_bytes_equivalent(spec) - dram_read;
        let int_ops = (spec.n * spec.limbs) as u64 * spec.instr.mmac_ops_per_element() as u64 * 6;
        let desc = KernelDesc::new(KernelClass::ElementWise, int_ops, dram_read, dram_write);
        let cost = self.gpu.cost(&desc);
        report.gpu_dram_bytes += desc.dram_bytes();
        report.energy_j += cost.energy_j;
        let start = *now;
        *now += cost.time_ns;
        report.push_segment(GanttSegment {
            start_ns: start,
            end_ns: *now,
            executor: Executor::Gpu,
            class: "element-wise",
            label,
            degraded: true,
        });
    }

    fn describe_gpu_op(
        &self,
        op: &Op,
        n: u64,
        class: KernelClass,
        cache: &mut L2Cache,
    ) -> KernelDesc {
        let int_ops = self.int_ops(&op.kind, n);
        let mut dram_read = 0u64;
        let mut dram_write = 0u64;
        let mut l2 = 0u64;
        match op.kind {
            OpKind::WriteBack { bytes } => {
                // Explicit flush: all bytes go to DRAM (§V-C).
                dram_write = bytes;
            }
            _ => {
                for r in &op.reads {
                    let missed = cache.read(r.id, r.bytes as usize);
                    dram_read += missed;
                    l2 += r.bytes - missed;
                }
                for w in &op.writes {
                    if w.bytes as usize > self.gpu.config().l2_bytes {
                        dram_write += w.bytes;
                    } else {
                        cache.write(w.id, w.bytes as usize);
                        l2 += w.bytes;
                    }
                }
            }
        }
        let mut k = KernelDesc::new(class, int_ops, dram_read, dram_write);
        k.l2_bytes = l2;
        k
    }
}

/// Estimates the DRAM footprint of a sequence: peak live data
/// (evk + plaintext + ciphertext objects), used for the OoM checks of
/// §VIII-B.
pub fn footprint_bytes(seq: &OpSequence) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0u64;
    for op in &seq.ops {
        for r in op.reads.iter().chain(op.writes.iter()) {
            if matches!(
                r.kind,
                ObjKind::Evk | ObjKind::Plaintext | ObjKind::Ciphertext
            ) && seen.insert(r.id)
            {
                total += r.bytes;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{Builder, LinTransStyle};
    use crate::params::ParamSet;
    use crate::passes::{fuse, offload, FusionConfig, OffloadPolicy};
    use gpu::config::{GpuConfig, LibraryProfile};

    fn gpu_model() -> GpuModel {
        GpuModel::new(GpuConfig::a100_80gb(), LibraryProfile::cheddar())
    }

    fn lt(reorder: bool) -> OpSequence {
        let mut b = Builder::new(ParamSet::paper_default());
        b.lintrans(54, 8, LinTransStyle::Hoisting, reorder)
    }

    #[test]
    fn gpu_only_schedule_produces_breakdown() {
        let m = gpu_model();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::gpu_baseline());
        let r = Scheduler::gpu_only(&m).run(&seq).unwrap();
        assert!(r.total_ns > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.fraction("element-wise") > 0.1, "EW must be visible");
        assert!(r.fraction("(I)NTT") > 0.05);
        assert_eq!(r.transitions, 0);
        assert!(r.pim_dram_bytes == 0);
    }

    #[test]
    fn pim_schedule_beats_gpu_only() {
        // The headline claim, at linear-transform granularity (Fig. 4a).
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();

        let mut gpu_seq = lt(true);
        fuse(&mut gpu_seq, &FusionConfig::gpu_baseline());
        let gpu_r = Scheduler::gpu_only(&m).run(&gpu_seq).unwrap();

        let mut pim_seq = lt(true);
        fuse(&mut pim_seq, &FusionConfig::full());
        offload(
            &mut pim_seq,
            &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0),
        );
        let pim_r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&pim_seq)
            .unwrap();

        assert!(
            pim_r.total_ns < gpu_r.total_ns,
            "PIM {:.1} µs must beat GPU-only {:.1} µs",
            pim_r.total_ns / 1e3,
            gpu_r.total_ns / 1e3
        );
        assert!(
            pim_r.gpu_dram_bytes < gpu_r.gpu_dram_bytes / 2,
            "PIM must slash GPU-side DRAM traffic (§V-D): {} vs {}",
            pim_r.gpu_dram_bytes,
            gpu_r.gpu_dram_bytes
        );
        assert!(pim_r.transitions >= 2);
        assert!(pim_r.energy_j < gpu_r.energy_j, "energy must also improve");
    }

    #[test]
    fn transitions_are_counted_and_bounded() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        // Transition overhead must stay negligible (§V-C).
        let overhead = r.transitions as f64 * TRANSITION_NS;
        assert!(overhead < 0.25 * r.total_ns, "transitions must be minor");
    }

    #[test]
    fn transient_faults_retry_then_fall_back_to_gpu() {
        // Bank flip probability 1: every PIM attempt fails its integrity
        // check, so each kernel burns MAX_PIM_RETRIES retries and then
        // re-executes on the GPU. The run still completes.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let kernels = clean
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Pim)
            .count() as u32;
        assert!(kernels > 0, "offload must produce PIM kernels");

        let plan = FaultPlan::none().with_seed(11).with_bank_flips(1.0);
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert_eq!(r.faults_detected, kernels * (1 + MAX_PIM_RETRIES));
        assert_eq!(r.pim_retries, kernels * MAX_PIM_RETRIES);
        // Wasted attempts plus one GPU re-execution per kernel.
        assert_eq!(
            r.degraded_segments,
            kernels * (1 + MAX_PIM_RETRIES) + kernels
        );
        assert!(
            r.total_ns > clean.total_ns,
            "degraded run must be slower: {} vs {}",
            r.total_ns,
            clean.total_ns
        );
    }

    #[test]
    fn hard_fault_permanently_disables_pim() {
        // A stuck MMAC lane is a hard fault: no retries, one wasted PIM
        // attempt, and the rest of the run stays on the GPU.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let plan = FaultPlan::none().with_seed(5).with_stuck_lane(3);
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert_eq!(r.faults_detected, 1, "first attempt detects the hard fault");
        assert_eq!(r.pim_retries, 0, "hard faults are never retried");
        let pim_segments = r
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Pim)
            .count();
        assert_eq!(pim_segments, 1, "only the wasted attempt touches PIM");
        assert!(
            r.degraded_segments >= 2,
            "wasted attempt + GPU re-execution"
        );
        // The work still completes; every degraded GPU segment is marked.
        assert!(r
            .segments
            .iter()
            .any(|s| s.executor == Executor::Gpu && s.degraded));
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let benign = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(FaultPlan::none())
            .run(&seq)
            .unwrap();
        assert_eq!(clean.total_ns, benign.total_ns);
        assert_eq!(benign.faults_detected, 0);
        assert_eq!(benign.degraded_segments, 0);
    }

    #[test]
    fn footprint_counts_unique_objects() {
        let seq = lt(true);
        let fp = footprint_bytes(&seq);
        // 7 evks of ~2·4·(54+14) limbs minimum.
        let evk = ParamSet::paper_default().evk_bytes() as u64;
        assert!(fp > 7 * evk / 2, "footprint must include the evks");
    }

    #[test]
    fn writeback_bytes_hit_dram() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut with_wb = lt(true);
        fuse(&mut with_wb, &FusionConfig::full());
        let stats = offload(
            &mut with_wb,
            &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0),
        );
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&with_wb)
            .unwrap();
        assert!(r.gpu_dram_bytes >= stats.writeback_bytes);
    }
}
