//! The stream-ordered GPU↔PIM scheduler (§V-C).
//!
//! Ops execute in issue order: GPU kernels run through the roofline model
//! with the object-granularity L2 filtering DRAM traffic; consecutive PIM
//! ops coalesce into one PIM kernel (large granularity, hundreds of µs);
//! each GPU↔PIM transition pays the stream-queue handoff of ~2 µs, which
//! §V-C shows is negligible at PIM-kernel granularity.
//!
//! With a [`FaultPlan`] attached, every PIM kernel runs under fault
//! injection and its post-kernel integrity check can fail. The scheduler
//! then degrades gracefully instead of propagating the failure: transient
//! faults are retried under the configured [`RetryPolicy`] (default: the
//! legacy [`MAX_PIM_RETRIES`] immediate retries), hard faults (a stuck
//! MMAC lane) permanently disable the PIM path, and whatever still fails
//! re-executes on the GPU. Every wasted attempt, backoff, and GPU
//! re-execution is charged to the timeline and recorded as a degraded
//! segment.
//!
//! With a [`HealthRegistry`] attached ([`Scheduler::run_with_health`]), the
//! degradation becomes *bank-scoped and stateful*: each PIM kernel is
//! attributed to a bank health domain (die group), integrity failures feed
//! that domain's circuit breaker, open breakers route their kernels
//! straight to the GPU while healthy domains keep serving PIM traffic, and
//! half-open probes bring recovered banks back. A hard fault opens only the
//! owning domain's breaker — permanently — instead of disabling PIM
//! wholesale. The registry persists across runs, which is how the serving
//! layer makes per-bank decisions *over time*.

use std::collections::HashMap;

use gpu::cache::L2Cache;
use gpu::kernel::{KernelClass, KernelDesc};
use gpu::model::GpuModel;
use pim::device::PimDeviceConfig;
use pim::error::PimError;
use pim::exec::{PimExecutor, PimKernelSpec};
use pim::fault::{BankDomain, FaultInjector, FaultPlan};
use pim::layout::LayoutPolicy;

use crate::error::RunError;
use crate::health::{HealthRegistry, PathDecision, RetryPolicy};
use crate::ir::{Executor, ObjKind, Op, OpKind, OpSequence};
use crate::report::{ExecutionReport, GanttSegment};
use crate::telemetry::Telemetry;

/// GPU↔PIM transition cost (§V-C: "a couple of microseconds").
pub const TRANSITION_NS: f64 = 2000.0;

/// Legacy default: PIM retries granted to a kernel after transient
/// integrity failures before it falls back to the GPU. Schedulers built
/// without an explicit [`RetryPolicy`] behave exactly as if
/// `RetryPolicy::fixed(MAX_PIM_RETRIES)` were configured.
pub const MAX_PIM_RETRIES: u32 = 2;

/// How the scheduler lays kernels onto the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// One timeline: every GPU↔PIM handoff serializes the two engines
    /// (the paper's deliberate §V-C design). The default, and
    /// bit-identical to the pre-mode scheduler.
    #[default]
    Serial,
    /// Two virtual streams (GPU, PIM): data-independent work overlaps in
    /// virtual time, and only dependencies that actually cross streams pay
    /// the `TRANSITION_NS` handoff. Models the double-buffered stream
    /// pipelining of GPU FHE libraries; §V-C bounds its win on
    /// bootstrapping below 1.35×.
    Pipelined,
}

/// Scheduler binding the execution engines.
#[derive(Debug)]
pub struct Scheduler<'a> {
    gpu: &'a GpuModel,
    pim: Option<(&'a PimDeviceConfig, LayoutPolicy)>,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
    mode: ScheduleMode,
    budget_ns: Option<f64>,
}

impl<'a> Scheduler<'a> {
    /// GPU-only scheduling.
    pub fn gpu_only(gpu: &'a GpuModel) -> Self {
        Self {
            gpu,
            pim: None,
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
            mode: ScheduleMode::Serial,
            budget_ns: None,
        }
    }

    /// GPU + PIM co-execution.
    pub fn with_pim(gpu: &'a GpuModel, dev: &'a PimDeviceConfig, layout: LayoutPolicy) -> Self {
        Self {
            gpu,
            pim: Some((dev, layout)),
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
            mode: ScheduleMode::Serial,
            budget_ns: None,
        }
    }

    /// Selects the timeline discipline. [`ScheduleMode::Serial`] (the
    /// default) is bit-identical to the pre-mode scheduler;
    /// [`ScheduleMode::Pipelined`] overlaps independent work across two
    /// virtual streams. Pipelined has no effect without a PIM device —
    /// GPU-only sequences have a single stream either way.
    pub fn with_mode(mut self, mode: ScheduleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a fault plan: PIM kernels run under fault injection and
    /// degrade to the GPU when their integrity checks fail.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Overrides the retry discipline for transient PIM failures. The
    /// default, [`RetryPolicy::fixed`]`(MAX_PIM_RETRIES)`, reproduces the
    /// legacy immediate-retry behaviour bit-for-bit.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attaches a deadline budget in virtual ns: at every segment boundary
    /// (each op in issue order, each queued PIM kernel) the scheduler checks
    /// the clock, and a run that is already past its budget stops there with
    /// [`ExecutionReport::cancelled`] set instead of burning the remaining
    /// cost. A run whose last segment finishes late is *not* cancelled —
    /// the work is done, so it reports as an ordinary late completion.
    /// Without a budget (the default) the timeline is untouched.
    pub fn with_deadline_budget(mut self, budget_ns: f64) -> Self {
        self.budget_ns = Some(budget_ns);
        self
    }

    fn over_budget(&self, now: f64) -> bool {
        self.budget_ns.is_some_and(|b| now > b)
    }

    /// Samples the GPU-side fault domain at one GPU kernel launch: returns
    /// the extra latency of an injected stream stall, and fails the
    /// end-to-end integrity verdict on an injected transfer bit flip (the
    /// GPU path has no per-kernel residue check to catch it earlier).
    /// Zero-probability plans draw nothing from the fault stream.
    fn apply_gpu_faults(injector: &mut Option<FaultInjector>, report: &mut ExecutionReport) -> f64 {
        let mut extra = 0.0;
        if let Some(inj) = injector.as_mut() {
            if let Some(stall) = inj.sample_gpu_stall() {
                extra += stall;
                report.gpu_stalls += 1;
            }
            if inj.sample_gpu_transfer_flip() {
                report.gpu_faults += 1;
                report.integrity_failed = true;
            }
        }
        extra
    }

    /// Integer ops a GPU kernel of this kind executes (one modmul ≈ 8
    /// 32-bit mul-adds plus surrounding adds, §III-A D2).
    fn int_ops(&self, kind: &OpKind, n: u64) -> u64 {
        match *kind {
            OpKind::Ntt { limbs } | OpKind::Intt { limbs } => {
                let log_n = 63 - n.leading_zeros() as u64;
                limbs as u64 * (n / 2) * log_n * 10
            }
            OpKind::BConv {
                src_limbs,
                dst_limbs,
            } => n * src_limbs as u64 * dst_limbs as u64 * 6,
            OpKind::Ew { instr, limbs } => {
                n * limbs as u64 * instr.mmac_ops_per_element() as u64 * 6
            }
            OpKind::Aut { .. } | OpKind::WriteBack { .. } => 0,
        }
    }

    fn kernel_class(kind: &OpKind) -> (&'static str, KernelClass) {
        match kind {
            OpKind::Ntt { .. } | OpKind::Intt { .. } => ("(I)NTT", KernelClass::Ntt),
            OpKind::BConv { .. } => ("BConv", KernelClass::BConv),
            OpKind::Ew { .. } => ("element-wise", KernelClass::ElementWise),
            OpKind::Aut { .. } => ("automorphism", KernelClass::Automorphism),
            OpKind::WriteBack { .. } => ("write-back", KernelClass::WriteBack),
        }
    }

    /// Runs the sequence and produces a report.
    ///
    /// Fails only on errors no fallback can absorb (e.g. a PIM instruction
    /// unsupported at the configured buffer size); integrity-check failures
    /// under an attached [`FaultPlan`] are handled by retry/degradation and
    /// recorded in the report instead.
    pub fn run(&self, seq: &OpSequence) -> Result<ExecutionReport, RunError> {
        self.run_inner(seq, None, None)
    }

    /// [`run`](Self::run) with telemetry: every kernel, handoff, backoff,
    /// and limb batch is recorded into `tel` as virtual-time spans and
    /// metrics. Recording happens only on this serial scheduling path, so
    /// the exported trace is bit-identical across thread counts.
    pub fn run_traced(
        &self,
        seq: &OpSequence,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        self.run_inner(seq, None, Some(tel))
    }

    /// Runs the sequence with per-bank circuit breaking: PIM kernels are
    /// attributed to the registry's bank domains, failures feed the
    /// domain breakers, and kernels whose breaker is open skip PIM and run
    /// on the GPU directly. The registry persists state across calls, so
    /// repeated runs (e.g. serving requests) accumulate health history.
    ///
    /// Fails with [`RunError::HealthDomainMismatch`] if the registry was
    /// sized for a different device.
    pub fn run_with_health(
        &self,
        seq: &OpSequence,
        registry: &mut HealthRegistry,
    ) -> Result<ExecutionReport, RunError> {
        self.check_domains(registry)?;
        self.run_inner(seq, Some(registry), None)
    }

    /// [`run_with_health`](Self::run_with_health) with telemetry; breaker
    /// transitions additionally land on the trace's `health` track.
    pub fn run_with_health_traced(
        &self,
        seq: &OpSequence,
        registry: &mut HealthRegistry,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        self.check_domains(registry)?;
        self.run_inner(seq, Some(registry), Some(tel))
    }

    fn check_domains(&self, registry: &HealthRegistry) -> Result<(), RunError> {
        if let Some((dev, _)) = self.pim {
            let device = dev.dram.geometry.die_groups;
            if registry.domains() != device {
                return Err(RunError::HealthDomainMismatch {
                    registry: registry.domains(),
                    device,
                });
            }
        }
        Ok(())
    }

    fn run_inner(
        &self,
        seq: &OpSequence,
        mut health: Option<&mut HealthRegistry>,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<ExecutionReport, RunError> {
        if self.mode == ScheduleMode::Pipelined && self.pim.is_some() {
            return self.run_inner_pipelined(seq, health, tel);
        }
        let n = seq.params.n() as u64;
        let mut report = ExecutionReport::default();
        let mut cache = L2Cache::new(self.gpu.config().l2_bytes);
        let mut now = 0.0f64;
        let mut last_exec = Executor::Gpu;
        let mut pim_batch: Vec<(PimKernelSpec, &'static str)> = Vec::new();
        let mut injector = self.fault.map(FaultInjector::new);
        let mut pim_disabled = false;
        let mut kernel_idx = 0u64;

        for op in &seq.ops {
            if self.over_budget(now) {
                report.cancelled = true;
                break;
            }
            let target = if self.pim.is_some() && !pim_disabled {
                op.executor
            } else {
                Executor::Gpu
            };
            match target {
                Executor::Pim => {
                    let (instr, limbs) = match op.kind {
                        OpKind::Ew { instr, limbs } => (instr, limbs),
                        _ => unreachable!("only element-wise ops are offloaded"),
                    };
                    if last_exec != Executor::Pim {
                        if let Some(t) = tel.as_deref_mut() {
                            t.transition(now, now + TRANSITION_NS);
                        }
                        now += TRANSITION_NS;
                        report.transitions += 1;
                        last_exec = Executor::Pim;
                    }
                    pim_batch.push((
                        PimKernelSpec {
                            instr,
                            limbs,
                            n: n as usize,
                        },
                        op.label,
                    ));
                }
                Executor::Gpu => {
                    if last_exec != Executor::Gpu {
                        // Drain the queued PIM kernels first.
                        if let Some(pim) = self.pim {
                            self.flush_pim(
                                &mut pim_batch,
                                &mut now,
                                &mut report,
                                pim,
                                &mut injector,
                                &mut pim_disabled,
                                health.as_deref_mut(),
                                &mut kernel_idx,
                                tel.as_deref_mut(),
                            )?;
                        }
                        if let Some(t) = tel.as_deref_mut() {
                            t.transition(now, now + TRANSITION_NS);
                        }
                        now += TRANSITION_NS;
                        report.transitions += 1;
                        last_exec = Executor::Gpu;
                    }
                    let (class_label, class) = Self::kernel_class(&op.kind);
                    let desc = self.describe_gpu_op(op, n, class, &mut cache);
                    let cost = self.gpu.cost(&desc);
                    report.gpu_dram_bytes += desc.dram_bytes();
                    report.energy_j += cost.energy_j;
                    let stall = Self::apply_gpu_faults(&mut injector, &mut report);
                    let start = now;
                    now += cost.time_ns + stall;
                    if let Some(t) = tel.as_deref_mut() {
                        t.gpu_kernel(
                            op.label,
                            class_label,
                            start,
                            now,
                            desc.dram_bytes(),
                            cost.bandwidth_bound,
                            false,
                        );
                    }
                    report.push_segment(GanttSegment {
                        start_ns: start,
                        end_ns: now,
                        executor: Executor::Gpu,
                        class: class_label,
                        label: op.label,
                        degraded: false,
                    });
                }
            }
        }
        if let Some(pim) = self.pim {
            self.flush_pim(
                &mut pim_batch,
                &mut now,
                &mut report,
                pim,
                &mut injector,
                &mut pim_disabled,
                health,
                &mut kernel_idx,
                tel.as_deref_mut(),
            )?;
        }
        report.total_ns = now;
        if let Some(t) = tel {
            t.run_complete(&report);
        }
        Ok(report)
    }

    /// The pipelined two-stream pass. Ops are still visited in issue order
    /// — so the stateful L2 model, the fault-injector stream, and breaker
    /// decisions consume exactly the serial sequence — but each op is
    /// placed on its own stream's cursor at the earliest point its data
    /// dependencies allow. A dependency whose producer ran on the other
    /// stream pays one [`TRANSITION_NS`] handoff; same-stream work queues
    /// back-to-back for free. Coherence write-backs carry no tracked
    /// read/write sets, so every PIM kernel additionally waits for the
    /// last write-back to land plus one handoff — the conservative barrier
    /// that keeps PIM from reading stale bank rows.
    ///
    /// `report.transitions` uses the same counting rule as serial mode
    /// (issue-order executor switches plus one per GPU fallback), so for a
    /// fault-free run `total_ns + stream_overlap_ns` reconstructs the
    /// serial makespan exactly.
    fn run_inner_pipelined(
        &self,
        seq: &OpSequence,
        mut health: Option<&mut HealthRegistry>,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<ExecutionReport, RunError> {
        let n = seq.params.n() as u64;
        let (dev, layout) = self.pim.expect("pipelined pass requires a PIM device");
        let exec = PimExecutor::new(dev, layout);
        let mut report = ExecutionReport::default();
        let mut cache = L2Cache::new(self.gpu.config().l2_bytes);
        let mut injector = self.fault.map(FaultInjector::new);
        let mut pim_disabled = false;
        let mut kernel_idx = 0u64;

        // Stream cursors and the dependency horizon. `writer_end` maps an
        // object to its last producer's completion (overwrite: builders
        // allocate SSA-style, so the last write in issue order is the
        // program-order dependency); `reader_end` max-merges, because a
        // later-issued reader can finish earlier on the other stream.
        let mut gpu_now = 0.0f64;
        let mut pim_now = 0.0f64;
        let mut last_flush_end = 0.0f64;
        let mut writer_end: HashMap<u64, (f64, Executor)> = HashMap::new();
        let mut reader_end: HashMap<u64, (f64, Executor)> = HashMap::new();

        let mut last_exec = Executor::Gpu;
        // Issue-order run-length segments per stream, for telemetry.
        let mut seg_idx = 0u32;
        let mut prev_seg_end = 0.0f64;
        let mut cur_seg: Option<(Executor, f64, f64, u32, f64)> = None;

        for op in &seq.ops {
            if self.over_budget(gpu_now.max(pim_now)) {
                report.cancelled = true;
                break;
            }
            let target = if !pim_disabled {
                op.executor
            } else {
                Executor::Gpu
            };
            let ready = Self::dep_ready_ns(op, target, &writer_end, &reader_end);
            let (start, done, done_on) = match target {
                Executor::Gpu => {
                    let (class_label, class) = Self::kernel_class(&op.kind);
                    let desc = self.describe_gpu_op(op, n, class, &mut cache);
                    let cost = self.gpu.cost(&desc);
                    report.gpu_dram_bytes += desc.dram_bytes();
                    report.energy_j += cost.energy_j;
                    let stall = Self::apply_gpu_faults(&mut injector, &mut report);
                    let start = gpu_now.max(ready);
                    if last_exec != Executor::Gpu {
                        if let Some(t) = tel.as_deref_mut() {
                            t.transition((start - TRANSITION_NS).max(0.0), start);
                        }
                        report.transitions += 1;
                        last_exec = Executor::Gpu;
                    }
                    let end = start + cost.time_ns + stall;
                    gpu_now = end;
                    if let Some(t) = tel.as_deref_mut() {
                        t.gpu_kernel(
                            op.label,
                            class_label,
                            start,
                            end,
                            desc.dram_bytes(),
                            cost.bandwidth_bound,
                            false,
                        );
                    }
                    report.push_segment(GanttSegment {
                        start_ns: start,
                        end_ns: end,
                        executor: Executor::Gpu,
                        class: class_label,
                        label: op.label,
                        degraded: false,
                    });
                    if matches!(op.kind, OpKind::WriteBack { .. }) {
                        last_flush_end = end;
                    }
                    (start, end, Executor::Gpu)
                }
                Executor::Pim => {
                    let (instr, limbs) = match op.kind {
                        OpKind::Ew { instr, limbs } => (instr, limbs),
                        _ => unreachable!("only element-wise ops are offloaded"),
                    };
                    let spec = PimKernelSpec {
                        instr,
                        limbs,
                        n: n as usize,
                    };
                    let kid = kernel_idx;
                    kernel_idx += 1;
                    let start = pim_now.max(ready).max(last_flush_end + TRANSITION_NS);
                    if last_exec != Executor::Pim {
                        if let Some(t) = tel.as_deref_mut() {
                            t.transition((start - TRANSITION_NS).max(0.0), start);
                        }
                        report.transitions += 1;
                        last_exec = Executor::Pim;
                    }
                    let (done, done_on) = match health.as_deref_mut() {
                        Some(reg) => self.pipelined_kernel_with_health(
                            &exec,
                            spec,
                            op.label,
                            start,
                            &mut pim_now,
                            &mut gpu_now,
                            &mut report,
                            dev,
                            &mut injector,
                            reg,
                            kid,
                            tel.as_deref_mut(),
                        )?,
                        None => self.pipelined_kernel_legacy(
                            &exec,
                            spec,
                            op.label,
                            start,
                            &mut pim_now,
                            &mut gpu_now,
                            &mut report,
                            dev,
                            &mut injector,
                            &mut pim_disabled,
                            kid,
                            tel.as_deref_mut(),
                        )?,
                    };
                    (start, done, done_on)
                }
            };
            Self::note_completion(op, done, done_on, &mut writer_end, &mut reader_end);
            match cur_seg.as_mut() {
                Some(s) if s.0 == target => {
                    s.2 = s.2.max(done);
                    s.3 += 1;
                }
                _ => {
                    if let Some((ex, s0, s1, ops, slide)) = cur_seg.take() {
                        if let Some(t) = tel.as_deref_mut() {
                            t.stream_segment(Self::stream_name(ex), seg_idx, s0, s1, ops, slide);
                        }
                        seg_idx += 1;
                        prev_seg_end = s1;
                    }
                    let slide = if seg_idx == 0 {
                        0.0
                    } else {
                        (prev_seg_end + TRANSITION_NS - start).max(0.0)
                    };
                    cur_seg = Some((target, start, done, 1, slide));
                }
            }
        }
        if let Some((ex, s0, s1, ops, slide)) = cur_seg.take() {
            if let Some(t) = tel.as_deref_mut() {
                t.stream_segment(Self::stream_name(ex), seg_idx, s0, s1, ops, slide);
            }
        }
        report.total_ns = gpu_now.max(pim_now);
        // How much virtual time the two streams hid: the serial-equivalent
        // span (kernels + handoffs + backoff) minus the pipelined makespan.
        let kernel_ns: f64 = report.breakdown_ns.values().sum();
        let serial_equiv =
            kernel_ns + f64::from(report.transitions) * TRANSITION_NS + report.backoff_ns;
        report.stream_overlap_ns = (serial_equiv - report.total_ns).max(0.0);
        if let Some(t) = tel {
            t.stream_overlap(report.stream_overlap_ns);
            t.run_complete(&report);
        }
        Ok(report)
    }

    fn stream_name(ex: Executor) -> &'static str {
        match ex {
            Executor::Gpu => "gpu",
            Executor::Pim => "pim",
        }
    }

    /// Earliest start permitted by `op`'s RAW/WAR/WAW dependencies, with a
    /// [`TRANSITION_NS`] penalty on every edge whose other endpoint ran on
    /// the opposite stream.
    fn dep_ready_ns(
        op: &Op,
        target: Executor,
        writer_end: &HashMap<u64, (f64, Executor)>,
        reader_end: &HashMap<u64, (f64, Executor)>,
    ) -> f64 {
        let cross = |(t, e): (f64, Executor)| {
            if e == target {
                t
            } else {
                t + TRANSITION_NS
            }
        };
        let mut ready = 0.0f64;
        for r in &op.reads {
            if let Some(&w) = writer_end.get(&r.id) {
                ready = ready.max(cross(w));
            }
        }
        for w in &op.writes {
            if let Some(&p) = writer_end.get(&w.id) {
                ready = ready.max(cross(p));
            }
            if let Some(&p) = reader_end.get(&w.id) {
                ready = ready.max(cross(p));
            }
        }
        ready
    }

    /// Publishes `op`'s completion into the dependency horizon.
    fn note_completion(
        op: &Op,
        end: f64,
        on: Executor,
        writer_end: &mut HashMap<u64, (f64, Executor)>,
        reader_end: &mut HashMap<u64, (f64, Executor)>,
    ) {
        for r in &op.reads {
            let e = reader_end.entry(r.id).or_insert((end, on));
            if end >= e.0 {
                *e = (end, on);
            }
        }
        for w in &op.writes {
            writer_end.insert(w.id, (end, on));
        }
    }

    /// Pipelined twin of [`Self::run_kernel_legacy`]: attempts, retries,
    /// and backoff charge the PIM stream from `start`; a GPU fallback
    /// queues behind the GPU stream after one handoff. Returns the op's
    /// completion time and which engine finished it.
    #[allow(clippy::too_many_arguments)]
    fn pipelined_kernel_legacy(
        &self,
        exec: &PimExecutor<'_>,
        spec: PimKernelSpec,
        label: &'static str,
        start: f64,
        pim_now: &mut f64,
        gpu_now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        injector: &mut Option<FaultInjector>,
        pim_disabled: &mut bool,
        kid: u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(f64, Executor), RunError> {
        let mut cursor = start;
        let mut retries = 0u32;
        let mut backoff_spent = 0.0f64;
        loop {
            let outcome = match injector.as_mut() {
                Some(inj) => exec.execute_with_faults(&spec, inj),
                None => exec.execute(&spec),
            };
            match outcome {
                Ok(r) => {
                    self.charge_pim_segment(
                        &r,
                        label,
                        false,
                        &mut cursor,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    *pim_now = cursor;
                    return Ok((cursor, Executor::Pim));
                }
                Err(PimError::IntegrityViolation(violation)) => {
                    report.faults_detected += 1;
                    if let Some(t) = tel.as_deref_mut() {
                        t.fault();
                    }
                    self.charge_pim_segment(
                        &violation.wasted,
                        label,
                        true,
                        &mut cursor,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    if violation.is_permanent() {
                        *pim_disabled = true;
                    } else if retries < self.retry.max_retries
                        && self.charge_backoff(
                            kid,
                            retries + 1,
                            &mut backoff_spent,
                            &mut cursor,
                            report,
                            tel.as_deref_mut(),
                        )
                    {
                        retries += 1;
                        report.pim_retries += 1;
                        if let Some(t) = tel.as_deref_mut() {
                            t.retry();
                        }
                        continue;
                    }
                    report.pim_fallbacks += 1;
                    if let Some(t) = tel.as_deref_mut() {
                        t.fallback();
                    }
                    *pim_now = cursor;
                    let done = self.pipelined_fallback(
                        exec, &spec, label, cursor, gpu_now, report, injector, tel,
                    );
                    return Ok((done, Executor::Gpu));
                }
                Err(e) => return Err(RunError::Pim(e)),
            }
        }
    }

    /// Pipelined twin of [`Self::run_kernel_with_health`]: breaker-gated
    /// routing with the attempt clock on the PIM stream and fallbacks on
    /// the GPU stream.
    #[allow(clippy::too_many_arguments)]
    fn pipelined_kernel_with_health(
        &self,
        exec: &PimExecutor<'_>,
        spec: PimKernelSpec,
        label: &'static str,
        start: f64,
        pim_now: &mut f64,
        gpu_now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        injector: &mut Option<FaultInjector>,
        reg: &mut HealthRegistry,
        kid: u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(f64, Executor), RunError> {
        let domains = reg.domains() as u32;
        let bank = reg.assign_domain();
        let domain = BankDomain::new(bank, domains);
        let (decision, transition) = reg.decide(bank, start);
        if let Some(t) = transition {
            if let Some(tl) = tel.as_deref_mut() {
                tl.breaker_transition(&t, start);
            }
            report.breaker_transitions.push(t);
        }
        if decision == PathDecision::Skip {
            report.breaker_skips += 1;
            if let Some(tl) = tel.as_deref_mut() {
                tl.breaker_skip();
            }
            // No PIM attempt was made, so the PIM cursor does not move.
            let done =
                self.pipelined_fallback(exec, &spec, label, start, gpu_now, report, injector, tel);
            return Ok((done, Executor::Gpu));
        }
        let mut cursor = start;
        let mut retries = 0u32;
        let mut backoff_spent = 0.0f64;
        loop {
            let outcome = match injector.as_mut() {
                Some(inj) => exec.execute_with_faults_scoped(&spec, inj, Some(domain)),
                None => exec.execute(&spec),
            };
            match outcome {
                Ok(r) => {
                    self.charge_pim_segment(
                        &r,
                        label,
                        false,
                        &mut cursor,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    if let Some(t) = reg.on_success(bank, cursor) {
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.breaker_transition(&t, cursor);
                        }
                        report.breaker_transitions.push(t);
                    }
                    *pim_now = cursor;
                    return Ok((cursor, Executor::Pim));
                }
                Err(PimError::IntegrityViolation(violation)) => {
                    report.faults_detected += 1;
                    reg.counters.faults_detected += 1;
                    if let Some(tl) = tel.as_deref_mut() {
                        tl.fault();
                    }
                    self.charge_pim_segment(
                        &violation.wasted,
                        label,
                        true,
                        &mut cursor,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    let permanent = violation.is_permanent();
                    if !permanent
                        && decision == PathDecision::Allow
                        && retries < self.retry.max_retries
                        && self.charge_backoff(
                            kid,
                            retries + 1,
                            &mut backoff_spent,
                            &mut cursor,
                            report,
                            tel.as_deref_mut(),
                        )
                    {
                        retries += 1;
                        report.pim_retries += 1;
                        reg.counters.pim_retries += 1;
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.retry();
                        }
                        continue;
                    }
                    if let Some(t) = reg.on_failure(bank, permanent, cursor, violation.cause()) {
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.breaker_transition(&t, cursor);
                        }
                        report.breaker_transitions.push(t);
                    }
                    report.pim_fallbacks += 1;
                    reg.counters.gpu_fallbacks += 1;
                    if let Some(tl) = tel.as_deref_mut() {
                        tl.fallback();
                    }
                    *pim_now = cursor;
                    let done = self.pipelined_fallback(
                        exec, &spec, label, cursor, gpu_now, report, injector, tel,
                    );
                    return Ok((done, Executor::Gpu));
                }
                Err(e) => return Err(RunError::Pim(e)),
            }
        }
    }

    /// Pipelined twin of [`Self::fallback_on_gpu`]: the re-dispatch pays
    /// one handoff from the failed attempt's end and then queues behind
    /// whatever the GPU stream is already running, so a fallback can never
    /// overlap another kernel on the same engine.
    #[allow(clippy::too_many_arguments)]
    fn pipelined_fallback(
        &self,
        exec: &PimExecutor<'_>,
        spec: &PimKernelSpec,
        label: &'static str,
        fail_end: f64,
        gpu_now: &mut f64,
        report: &mut ExecutionReport,
        injector: &mut Option<FaultInjector>,
        mut tel: Option<&mut Telemetry>,
    ) -> f64 {
        let start = gpu_now.max(fail_end + TRANSITION_NS);
        if let Some(t) = tel.as_deref_mut() {
            t.transition((start - TRANSITION_NS).max(0.0), start);
        }
        report.transitions += 1;
        let p = spec.instr.profile();
        let dram_read = (p.total_reads() * spec.limbs * spec.n * 4) as u64;
        let dram_write = exec.gpu_bytes_equivalent(spec) - dram_read;
        let int_ops = (spec.n * spec.limbs) as u64 * spec.instr.mmac_ops_per_element() as u64 * 6;
        let desc = KernelDesc::new(KernelClass::ElementWise, int_ops, dram_read, dram_write);
        let cost = self.gpu.cost(&desc);
        report.gpu_dram_bytes += desc.dram_bytes();
        report.energy_j += cost.energy_j;
        let stall = Self::apply_gpu_faults(injector, report);
        let end = start + cost.time_ns + stall;
        if let Some(t) = tel {
            t.gpu_kernel(
                label,
                "element-wise",
                start,
                end,
                desc.dram_bytes(),
                cost.bandwidth_bound,
                true,
            );
        }
        report.push_segment(GanttSegment {
            start_ns: start,
            end_ns: end,
            executor: Executor::Gpu,
            class: "element-wise",
            label,
            degraded: true,
        });
        *gpu_now = end;
        end
    }

    /// Drains queued PIM kernels: executes each (under fault injection when
    /// configured), retries transient integrity failures under the retry
    /// policy, and re-executes on the GPU what PIM cannot complete. With a
    /// [`HealthRegistry`] attached, routing is breaker-gated per bank
    /// domain instead of the legacy global `pim_disabled` switch.
    #[allow(clippy::too_many_arguments)]
    fn flush_pim(
        &self,
        batch: &mut Vec<(PimKernelSpec, &'static str)>,
        now: &mut f64,
        report: &mut ExecutionReport,
        pim: (&PimDeviceConfig, LayoutPolicy),
        injector: &mut Option<FaultInjector>,
        pim_disabled: &mut bool,
        mut health: Option<&mut HealthRegistry>,
        kernel_idx: &mut u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        if batch.is_empty() {
            return Ok(());
        }
        let exec = PimExecutor::new(pim.0, pim.1);
        for (spec, label) in batch.drain(..) {
            if self.over_budget(*now) {
                // Budget ran out between queued kernels: drop the rest of
                // the batch (the drain consumes it) and cancel the run.
                report.cancelled = true;
                break;
            }
            let kid = *kernel_idx;
            *kernel_idx += 1;
            match health.as_deref_mut() {
                Some(reg) => {
                    self.run_kernel_with_health(
                        &exec,
                        spec,
                        label,
                        now,
                        report,
                        pim.0,
                        injector,
                        reg,
                        kid,
                        tel.as_deref_mut(),
                    )?;
                }
                None => {
                    self.run_kernel_legacy(
                        &exec,
                        spec,
                        label,
                        now,
                        report,
                        pim.0,
                        injector,
                        pim_disabled,
                        kid,
                        tel.as_deref_mut(),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Charges a PIM attempt (successful or wasted) to the timeline.
    #[allow(clippy::too_many_arguments)]
    fn charge_pim_segment(
        &self,
        r: &pim::exec::PimKernelResult,
        label: &'static str,
        degraded: bool,
        now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        tel: Option<&mut Telemetry>,
    ) {
        let start = *now;
        *now += r.latency_ns;
        report.energy_j += r.energy_joules(dev);
        report.pim_dram_bytes += r.bytes_internal;
        if let Some(t) = tel {
            t.pim_kernel(label, start, *now, r, degraded);
        }
        report.push_segment(GanttSegment {
            start_ns: start,
            end_ns: *now,
            executor: Executor::Pim,
            class: "element-wise",
            label,
            degraded,
        });
    }

    /// Computes (and charges, if affordable) the backoff before the next
    /// retry of kernel `kid`. Returns false when the backoff budget is
    /// exhausted and the kernel should fall back instead.
    fn charge_backoff(
        &self,
        kid: u64,
        attempt: u32,
        backoff_spent: &mut f64,
        now: &mut f64,
        report: &mut ExecutionReport,
        tel: Option<&mut Telemetry>,
    ) -> bool {
        let b = self.retry.backoff_ns(kid, attempt);
        if *backoff_spent + b > self.retry.budget_ns {
            return false;
        }
        if let Some(t) = tel {
            if b > 0.0 {
                t.backoff(*now, *now + b);
            }
        }
        *backoff_spent += b;
        *now += b;
        report.backoff_ns += b;
        true
    }

    /// The legacy (registry-free) degradation path: policy-driven retries
    /// and a global PIM kill switch on the first hard fault.
    #[allow(clippy::too_many_arguments)]
    fn run_kernel_legacy(
        &self,
        exec: &PimExecutor<'_>,
        spec: PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        injector: &mut Option<FaultInjector>,
        pim_disabled: &mut bool,
        kid: u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        if *pim_disabled {
            // A prior hard fault took the PIM path out; the rest of the
            // batch re-executes on the GPU.
            self.fallback_on_gpu(exec, &spec, label, now, report, injector, tel);
            return Ok(());
        }
        let mut retries = 0u32;
        let mut backoff_spent = 0.0f64;
        loop {
            let outcome = match injector.as_mut() {
                Some(inj) => exec.execute_with_faults(&spec, inj),
                None => exec.execute(&spec),
            };
            match outcome {
                Ok(r) => {
                    self.charge_pim_segment(&r, label, false, now, report, dev, tel.as_deref_mut());
                    break;
                }
                Err(PimError::IntegrityViolation(violation)) => {
                    report.faults_detected += 1;
                    if let Some(t) = tel.as_deref_mut() {
                        t.fault();
                    }
                    // The failed attempt still burned time and energy.
                    self.charge_pim_segment(
                        &violation.wasted,
                        label,
                        true,
                        now,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    if violation.is_permanent() {
                        // Hard fault (stuck MMAC lane): retrying on PIM
                        // cannot succeed — disable the path for good.
                        *pim_disabled = true;
                    } else if retries < self.retry.max_retries
                        && self.charge_backoff(
                            kid,
                            retries + 1,
                            &mut backoff_spent,
                            now,
                            report,
                            tel.as_deref_mut(),
                        )
                    {
                        retries += 1;
                        report.pim_retries += 1;
                        if let Some(t) = tel.as_deref_mut() {
                            t.retry();
                        }
                        continue;
                    }
                    report.pim_fallbacks += 1;
                    if let Some(t) = tel.as_deref_mut() {
                        t.fallback();
                    }
                    self.fallback_on_gpu(exec, &spec, label, now, report, injector, tel);
                    break;
                }
                Err(e) => return Err(RunError::Pim(e)),
            }
        }
        Ok(())
    }

    /// The breaker-gated degradation path: the kernel is attributed to a
    /// bank health domain, an open breaker routes it straight to the GPU,
    /// and its outcome feeds the domain's breaker. Faults are scoped to
    /// the owning domain ([`PimExecutor::execute_with_faults_scoped`]), so
    /// a stuck lane sickens one die group instead of the whole device.
    #[allow(clippy::too_many_arguments)]
    fn run_kernel_with_health(
        &self,
        exec: &PimExecutor<'_>,
        spec: PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        injector: &mut Option<FaultInjector>,
        reg: &mut HealthRegistry,
        kid: u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        let domains = reg.domains() as u32;
        let bank = reg.assign_domain();
        let domain = BankDomain::new(bank, domains);
        let (decision, transition) = reg.decide(bank, *now);
        if let Some(t) = transition {
            if let Some(tl) = tel.as_deref_mut() {
                tl.breaker_transition(&t, *now);
            }
            report.breaker_transitions.push(t);
        }
        if decision == PathDecision::Skip {
            report.breaker_skips += 1;
            if let Some(tl) = tel.as_deref_mut() {
                tl.breaker_skip();
            }
            self.fallback_on_gpu(exec, &spec, label, now, report, injector, tel);
            return Ok(());
        }
        let mut retries = 0u32;
        let mut backoff_spent = 0.0f64;
        loop {
            let outcome = match injector.as_mut() {
                Some(inj) => exec.execute_with_faults_scoped(&spec, inj, Some(domain)),
                None => exec.execute(&spec),
            };
            match outcome {
                Ok(r) => {
                    self.charge_pim_segment(&r, label, false, now, report, dev, tel.as_deref_mut());
                    if let Some(t) = reg.on_success(bank, *now) {
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.breaker_transition(&t, *now);
                        }
                        report.breaker_transitions.push(t);
                    }
                    break;
                }
                Err(PimError::IntegrityViolation(violation)) => {
                    report.faults_detected += 1;
                    reg.counters.faults_detected += 1;
                    if let Some(tl) = tel.as_deref_mut() {
                        tl.fault();
                    }
                    self.charge_pim_segment(
                        &violation.wasted,
                        label,
                        true,
                        now,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    let permanent = violation.is_permanent();
                    // A half-open probe gets exactly one attempt; hard
                    // faults are never retried.
                    if !permanent
                        && decision == PathDecision::Allow
                        && retries < self.retry.max_retries
                        && self.charge_backoff(
                            kid,
                            retries + 1,
                            &mut backoff_spent,
                            now,
                            report,
                            tel.as_deref_mut(),
                        )
                    {
                        retries += 1;
                        report.pim_retries += 1;
                        reg.counters.pim_retries += 1;
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.retry();
                        }
                        continue;
                    }
                    if let Some(t) = reg.on_failure(bank, permanent, *now, violation.cause()) {
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.breaker_transition(&t, *now);
                        }
                        report.breaker_transitions.push(t);
                    }
                    report.pim_fallbacks += 1;
                    reg.counters.gpu_fallbacks += 1;
                    if let Some(tl) = tel.as_deref_mut() {
                        tl.fallback();
                    }
                    self.fallback_on_gpu(exec, &spec, label, now, report, injector, tel);
                    break;
                }
                Err(e) => return Err(RunError::Pim(e)),
            }
        }
        Ok(())
    }

    /// Re-executes a failed PIM kernel on the GPU. The operands are
    /// PIM-resident, so the kernel streams everything through DRAM with no
    /// L2 reuse, and the re-dispatch pays one PIM→GPU handoff.
    #[allow(clippy::too_many_arguments)]
    fn fallback_on_gpu(
        &self,
        exec: &PimExecutor<'_>,
        spec: &PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
        injector: &mut Option<FaultInjector>,
        mut tel: Option<&mut Telemetry>,
    ) {
        if let Some(t) = tel.as_deref_mut() {
            t.transition(*now, *now + TRANSITION_NS);
        }
        *now += TRANSITION_NS;
        report.transitions += 1;
        let p = spec.instr.profile();
        let dram_read = (p.total_reads() * spec.limbs * spec.n * 4) as u64;
        let dram_write = exec.gpu_bytes_equivalent(spec) - dram_read;
        let int_ops = (spec.n * spec.limbs) as u64 * spec.instr.mmac_ops_per_element() as u64 * 6;
        let desc = KernelDesc::new(KernelClass::ElementWise, int_ops, dram_read, dram_write);
        let cost = self.gpu.cost(&desc);
        report.gpu_dram_bytes += desc.dram_bytes();
        report.energy_j += cost.energy_j;
        let stall = Self::apply_gpu_faults(injector, report);
        let start = *now;
        *now += cost.time_ns + stall;
        if let Some(t) = tel {
            t.gpu_kernel(
                label,
                "element-wise",
                start,
                *now,
                desc.dram_bytes(),
                cost.bandwidth_bound,
                true,
            );
        }
        report.push_segment(GanttSegment {
            start_ns: start,
            end_ns: *now,
            executor: Executor::Gpu,
            class: "element-wise",
            label,
            degraded: true,
        });
    }

    fn describe_gpu_op(
        &self,
        op: &Op,
        n: u64,
        class: KernelClass,
        cache: &mut L2Cache,
    ) -> KernelDesc {
        let int_ops = self.int_ops(&op.kind, n);
        let mut dram_read = 0u64;
        let mut dram_write = 0u64;
        let mut l2 = 0u64;
        match op.kind {
            OpKind::WriteBack { bytes } => {
                // Explicit flush: all bytes go to DRAM (§V-C).
                dram_write = bytes;
            }
            _ => {
                for r in &op.reads {
                    let missed = cache.read(r.id, r.bytes as usize);
                    dram_read += missed;
                    l2 += r.bytes - missed;
                }
                for w in &op.writes {
                    if w.bytes as usize > self.gpu.config().l2_bytes {
                        dram_write += w.bytes;
                    } else {
                        cache.write(w.id, w.bytes as usize);
                        l2 += w.bytes;
                    }
                }
            }
        }
        let mut k = KernelDesc::new(class, int_ops, dram_read, dram_write);
        k.l2_bytes = l2;
        k
    }
}

/// Estimates the DRAM footprint of a sequence: peak live data
/// (evk + plaintext + ciphertext objects), used for the OoM checks of
/// §VIII-B.
pub fn footprint_bytes(seq: &OpSequence) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0u64;
    for op in &seq.ops {
        for r in op.reads.iter().chain(op.writes.iter()) {
            if matches!(
                r.kind,
                ObjKind::Evk | ObjKind::Plaintext | ObjKind::Ciphertext
            ) && seen.insert(r.id)
            {
                total += r.bytes;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{Builder, LinTransStyle};
    use crate::params::ParamSet;
    use crate::passes::{fuse, offload, FusionConfig, OffloadPolicy};
    use gpu::config::{GpuConfig, LibraryProfile};

    fn gpu_model() -> GpuModel {
        GpuModel::new(GpuConfig::a100_80gb(), LibraryProfile::cheddar())
    }

    fn lt(reorder: bool) -> OpSequence {
        let mut b = Builder::new(ParamSet::paper_default());
        b.lintrans(54, 8, LinTransStyle::Hoisting, reorder)
    }

    #[test]
    fn gpu_only_schedule_produces_breakdown() {
        let m = gpu_model();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::gpu_baseline());
        let r = Scheduler::gpu_only(&m).run(&seq).unwrap();
        assert!(r.total_ns > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.fraction("element-wise") > 0.1, "EW must be visible");
        assert!(r.fraction("(I)NTT") > 0.05);
        assert_eq!(r.transitions, 0);
        assert!(r.pim_dram_bytes == 0);
    }

    #[test]
    fn pim_schedule_beats_gpu_only() {
        // The headline claim, at linear-transform granularity (Fig. 4a).
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();

        let mut gpu_seq = lt(true);
        fuse(&mut gpu_seq, &FusionConfig::gpu_baseline());
        let gpu_r = Scheduler::gpu_only(&m).run(&gpu_seq).unwrap();

        let mut pim_seq = lt(true);
        fuse(&mut pim_seq, &FusionConfig::full());
        offload(
            &mut pim_seq,
            &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0),
        );
        let pim_r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&pim_seq)
            .unwrap();

        assert!(
            pim_r.total_ns < gpu_r.total_ns,
            "PIM {:.1} µs must beat GPU-only {:.1} µs",
            pim_r.total_ns / 1e3,
            gpu_r.total_ns / 1e3
        );
        assert!(
            pim_r.gpu_dram_bytes < gpu_r.gpu_dram_bytes / 2,
            "PIM must slash GPU-side DRAM traffic (§V-D): {} vs {}",
            pim_r.gpu_dram_bytes,
            gpu_r.gpu_dram_bytes
        );
        assert!(pim_r.transitions >= 2);
        assert!(pim_r.energy_j < gpu_r.energy_j, "energy must also improve");
    }

    #[test]
    fn transitions_are_counted_and_bounded() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        // Transition overhead must stay negligible (§V-C).
        let overhead = r.transitions as f64 * TRANSITION_NS;
        assert!(overhead < 0.25 * r.total_ns, "transitions must be minor");
    }

    #[test]
    fn transient_faults_retry_then_fall_back_to_gpu() {
        // Bank flip probability 1: every PIM attempt fails its integrity
        // check, so each kernel burns MAX_PIM_RETRIES retries and then
        // re-executes on the GPU. The run still completes.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let kernels = clean
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Pim)
            .count() as u32;
        assert!(kernels > 0, "offload must produce PIM kernels");

        let plan = FaultPlan::none().with_seed(11).with_bank_flips(1.0);
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert_eq!(r.faults_detected, kernels * (1 + MAX_PIM_RETRIES));
        assert_eq!(r.pim_retries, kernels * MAX_PIM_RETRIES);
        // Wasted attempts plus one GPU re-execution per kernel.
        assert_eq!(
            r.degraded_segments,
            kernels * (1 + MAX_PIM_RETRIES) + kernels
        );
        assert!(
            r.total_ns > clean.total_ns,
            "degraded run must be slower: {} vs {}",
            r.total_ns,
            clean.total_ns
        );
    }

    #[test]
    fn hard_fault_permanently_disables_pim() {
        // A stuck MMAC lane is a hard fault: no retries, one wasted PIM
        // attempt, and the rest of the run stays on the GPU.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let plan = FaultPlan::none().with_seed(5).with_stuck_lane(3);
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert_eq!(r.faults_detected, 1, "first attempt detects the hard fault");
        assert_eq!(r.pim_retries, 0, "hard faults are never retried");
        let pim_segments = r
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Pim)
            .count();
        assert_eq!(pim_segments, 1, "only the wasted attempt touches PIM");
        assert!(
            r.degraded_segments >= 2,
            "wasted attempt + GPU re-execution"
        );
        // The work still completes; every degraded GPU segment is marked.
        assert!(r
            .segments
            .iter()
            .any(|s| s.executor == Executor::Gpu && s.degraded));
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let benign = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(FaultPlan::none())
            .run(&seq)
            .unwrap();
        assert_eq!(clean.total_ns, benign.total_ns);
        assert_eq!(benign.faults_detected, 0);
        assert_eq!(benign.degraded_segments, 0);
    }

    #[test]
    fn footprint_counts_unique_objects() {
        let seq = lt(true);
        let fp = footprint_bytes(&seq);
        // 7 evks of ~2·4·(54+14) limbs minimum.
        let evk = ParamSet::paper_default().evk_bytes() as u64;
        assert!(fp > 7 * evk / 2, "footprint must include the evks");
    }

    fn offloaded_bootstrap(m: &GpuModel, dev: &PimDeviceConfig) -> OpSequence {
        let mut seq = Builder::new(ParamSet::paper_default()).bootstrap();
        fuse(&mut seq, &FusionConfig::full());
        crate::passes::offload_measured(
            &mut seq,
            m,
            dev,
            LayoutPolicy::ColumnPartitioned,
            TRANSITION_NS,
        );
        seq
    }

    #[test]
    fn pipelined_bootstrap_speedup_within_v_c_band() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let seq = offloaded_bootstrap(&m, &dev);
        let serial = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let pipe = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_mode(ScheduleMode::Pipelined)
            .run(&seq)
            .unwrap();
        let speedup = serial.total_ns / pipe.total_ns;
        assert!(
            speedup > 1.0 && speedup <= 1.35,
            "§V-C band violated: {speedup:.4}x"
        );
        assert!(
            speedup <= serial.pipelining_headroom() + 1e-9,
            "cannot beat the perfect-overlap bound"
        );
        // Work is conserved: identical kernels, bytes, energy, handoffs.
        assert_eq!(serial.gpu_dram_bytes, pipe.gpu_dram_bytes);
        assert_eq!(serial.pim_dram_bytes, pipe.pim_dram_bytes);
        assert_eq!(serial.transitions, pipe.transitions);
        assert_eq!(serial.segments.len(), pipe.segments.len());
        assert!((serial.energy_j - pipe.energy_j).abs() < 1e-9);
        // Overlap accounting reconstructs the serial makespan.
        assert!(
            (pipe.total_ns + pipe.stream_overlap_ns - serial.total_ns).abs() < 1e-3,
            "overlap {} + total {} vs serial {}",
            pipe.stream_overlap_ns,
            pipe.total_ns,
            serial.total_ns
        );
    }

    #[test]
    fn pipelined_gpu_only_sequence_matches_serial() {
        // No PIM ops → one stream → the pipelined pass degenerates to the
        // serial schedule exactly.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::gpu_baseline());
        let serial = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let pipe = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_mode(ScheduleMode::Pipelined)
            .run(&seq)
            .unwrap();
        assert_eq!(serial.total_ns, pipe.total_ns);
        assert_eq!(serial.gpu_dram_bytes, pipe.gpu_dram_bytes);
        assert_eq!(serial.transitions, pipe.transitions);
        assert!(pipe.stream_overlap_ns < 1e-3);
    }

    #[test]
    fn pipelined_mode_is_deterministic_under_faults() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let plan = FaultPlan::none().with_seed(11).with_bank_flips(1.0);
        let run = || {
            Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
                .with_mode(ScheduleMode::Pipelined)
                .with_fault_plan(plan)
                .run(&seq)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.faults_detected > 0, "injection must bite");
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.faults_detected, b.faults_detected);
        assert_eq!(a.pim_fallbacks, b.pim_fallbacks);
        // Every fallback queues behind the GPU stream: no two GPU
        // segments may overlap.
        let mut gpu_ends: Vec<(f64, f64)> = a
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Gpu)
            .map(|s| (s.start_ns, s.end_ns))
            .collect();
        gpu_ends.sort_by(|x, y| x.0.total_cmp(&y.0));
        for w in gpu_ends.windows(2) {
            assert!(w[1].0 >= w[0].1 - 1e-9, "GPU segments overlap: {w:?}");
        }
    }

    #[test]
    fn serial_is_the_default_mode() {
        assert_eq!(ScheduleMode::default(), ScheduleMode::Serial);
    }

    #[test]
    fn deadline_budget_cancels_mid_flight() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        assert!(!clean.cancelled);

        // A generous budget changes nothing.
        let roomy = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_deadline_budget(clean.total_ns * 10.0)
            .run(&seq)
            .unwrap();
        assert!(!roomy.cancelled);
        assert_eq!(roomy.total_ns, clean.total_ns);
        assert_eq!(roomy.segments.len(), clean.segments.len());

        // A tight budget cancels at a segment boundary: only part of the
        // work ran, and the consumed time is what the report carries.
        let tight = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_deadline_budget(clean.total_ns * 0.3)
            .run(&seq)
            .unwrap();
        assert!(tight.cancelled, "30% budget must cancel the run");
        assert!(tight.total_ns < clean.total_ns);
        assert!(tight.segments.len() < clean.segments.len());
        assert!(tight.summary_line().contains("CANCELLED over budget"));
    }

    #[test]
    fn deadline_budget_cancels_pipelined_runs_too() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let seq = offloaded_bootstrap(&m, &dev);
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_mode(ScheduleMode::Pipelined)
            .run(&seq)
            .unwrap();
        let tight = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_mode(ScheduleMode::Pipelined)
            .with_deadline_budget(clean.total_ns * 0.25)
            .run(&seq)
            .unwrap();
        assert!(tight.cancelled);
        assert!(tight.total_ns < clean.total_ns);
    }

    #[test]
    fn gpu_stalls_add_latency_only() {
        let m = gpu_model();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::gpu_baseline());
        let clean = Scheduler::gpu_only(&m).run(&seq).unwrap();
        let plan = FaultPlan::none().with_seed(7).with_gpu_stalls(1.0, 5000.0);
        let r = Scheduler::gpu_only(&m)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        let kernels = clean.segments.len() as u32;
        assert_eq!(r.gpu_stalls, kernels, "every launch must stall at p=1");
        assert_eq!(r.gpu_faults, 0);
        assert!(!r.integrity_failed, "stalls are latency-only");
        let expected = clean.total_ns + f64::from(kernels) * 5000.0;
        assert!(
            (r.total_ns - expected).abs() < 1e-6,
            "stall latency must be additive: {} vs {}",
            r.total_ns,
            expected
        );
        assert_eq!(r.energy_j, clean.energy_j, "stalls burn time, not energy");
    }

    #[test]
    fn gpu_transfer_flips_fail_e2e_integrity() {
        let m = gpu_model();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::gpu_baseline());
        let clean = Scheduler::gpu_only(&m).run(&seq).unwrap();
        let plan = FaultPlan::none().with_seed(9).with_gpu_transfer_flips(1.0);
        let r = Scheduler::gpu_only(&m)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert!(r.integrity_failed, "a flip must fail the e2e verdict");
        assert_eq!(r.gpu_faults, clean.segments.len() as u32);
        assert_eq!(r.gpu_stalls, 0);
        assert_eq!(
            r.total_ns, clean.total_ns,
            "flips are silent: no timeline impact"
        );
        assert!(r.summary_line().contains("e2e integrity FAILED"));
    }

    #[test]
    fn writeback_bytes_hit_dram() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut with_wb = lt(true);
        fuse(&mut with_wb, &FusionConfig::full());
        let stats = offload(
            &mut with_wb,
            &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0),
        );
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&with_wb)
            .unwrap();
        assert!(r.gpu_dram_bytes >= stats.writeback_bytes);
    }
}
