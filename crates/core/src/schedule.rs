//! The stream-ordered GPU↔PIM scheduler (§V-C).
//!
//! Ops execute in issue order: GPU kernels run through the roofline model
//! with the object-granularity L2 filtering DRAM traffic; consecutive PIM
//! ops coalesce into one PIM kernel (large granularity, hundreds of µs);
//! each GPU↔PIM transition pays the stream-queue handoff of ~2 µs, which
//! §V-C shows is negligible at PIM-kernel granularity.
//!
//! With a [`FaultPlan`] attached, every PIM kernel runs under fault
//! injection and its post-kernel integrity check can fail. The scheduler
//! then degrades gracefully instead of propagating the failure: transient
//! faults are retried under the configured [`RetryPolicy`] (default: the
//! legacy [`MAX_PIM_RETRIES`] immediate retries), hard faults (a stuck
//! MMAC lane) permanently disable the PIM path, and whatever still fails
//! re-executes on the GPU. Every wasted attempt, backoff, and GPU
//! re-execution is charged to the timeline and recorded as a degraded
//! segment.
//!
//! With a [`HealthRegistry`] attached ([`Scheduler::run_with_health`]), the
//! degradation becomes *bank-scoped and stateful*: each PIM kernel is
//! attributed to a bank health domain (die group), integrity failures feed
//! that domain's circuit breaker, open breakers route their kernels
//! straight to the GPU while healthy domains keep serving PIM traffic, and
//! half-open probes bring recovered banks back. A hard fault opens only the
//! owning domain's breaker — permanently — instead of disabling PIM
//! wholesale. The registry persists across runs, which is how the serving
//! layer makes per-bank decisions *over time*.

use gpu::cache::L2Cache;
use gpu::kernel::{KernelClass, KernelDesc};
use gpu::model::GpuModel;
use pim::device::PimDeviceConfig;
use pim::error::PimError;
use pim::exec::{PimExecutor, PimKernelSpec};
use pim::fault::{BankDomain, FaultInjector, FaultPlan};
use pim::layout::LayoutPolicy;

use crate::error::RunError;
use crate::health::{HealthRegistry, PathDecision, RetryPolicy};
use crate::ir::{Executor, ObjKind, Op, OpKind, OpSequence};
use crate::report::{ExecutionReport, GanttSegment};
use crate::telemetry::Telemetry;

/// GPU↔PIM transition cost (§V-C: "a couple of microseconds").
pub const TRANSITION_NS: f64 = 2000.0;

/// Legacy default: PIM retries granted to a kernel after transient
/// integrity failures before it falls back to the GPU. Schedulers built
/// without an explicit [`RetryPolicy`] behave exactly as if
/// `RetryPolicy::fixed(MAX_PIM_RETRIES)` were configured.
pub const MAX_PIM_RETRIES: u32 = 2;

/// Scheduler binding the execution engines.
#[derive(Debug)]
pub struct Scheduler<'a> {
    gpu: &'a GpuModel,
    pim: Option<(&'a PimDeviceConfig, LayoutPolicy)>,
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
}

impl<'a> Scheduler<'a> {
    /// GPU-only scheduling.
    pub fn gpu_only(gpu: &'a GpuModel) -> Self {
        Self {
            gpu,
            pim: None,
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
        }
    }

    /// GPU + PIM co-execution.
    pub fn with_pim(gpu: &'a GpuModel, dev: &'a PimDeviceConfig, layout: LayoutPolicy) -> Self {
        Self {
            gpu,
            pim: Some((dev, layout)),
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
        }
    }

    /// Attaches a fault plan: PIM kernels run under fault injection and
    /// degrade to the GPU when their integrity checks fail.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Overrides the retry discipline for transient PIM failures. The
    /// default, [`RetryPolicy::fixed`]`(MAX_PIM_RETRIES)`, reproduces the
    /// legacy immediate-retry behaviour bit-for-bit.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Integer ops a GPU kernel of this kind executes (one modmul ≈ 8
    /// 32-bit mul-adds plus surrounding adds, §III-A D2).
    fn int_ops(&self, kind: &OpKind, n: u64) -> u64 {
        match *kind {
            OpKind::Ntt { limbs } | OpKind::Intt { limbs } => {
                let log_n = 63 - n.leading_zeros() as u64;
                limbs as u64 * (n / 2) * log_n * 10
            }
            OpKind::BConv {
                src_limbs,
                dst_limbs,
            } => n * src_limbs as u64 * dst_limbs as u64 * 6,
            OpKind::Ew { instr, limbs } => {
                n * limbs as u64 * instr.mmac_ops_per_element() as u64 * 6
            }
            OpKind::Aut { .. } | OpKind::WriteBack { .. } => 0,
        }
    }

    fn kernel_class(kind: &OpKind) -> (&'static str, KernelClass) {
        match kind {
            OpKind::Ntt { .. } | OpKind::Intt { .. } => ("(I)NTT", KernelClass::Ntt),
            OpKind::BConv { .. } => ("BConv", KernelClass::BConv),
            OpKind::Ew { .. } => ("element-wise", KernelClass::ElementWise),
            OpKind::Aut { .. } => ("automorphism", KernelClass::Automorphism),
            OpKind::WriteBack { .. } => ("write-back", KernelClass::WriteBack),
        }
    }

    /// Runs the sequence and produces a report.
    ///
    /// Fails only on errors no fallback can absorb (e.g. a PIM instruction
    /// unsupported at the configured buffer size); integrity-check failures
    /// under an attached [`FaultPlan`] are handled by retry/degradation and
    /// recorded in the report instead.
    pub fn run(&self, seq: &OpSequence) -> Result<ExecutionReport, RunError> {
        self.run_inner(seq, None, None)
    }

    /// [`run`](Self::run) with telemetry: every kernel, handoff, backoff,
    /// and limb batch is recorded into `tel` as virtual-time spans and
    /// metrics. Recording happens only on this serial scheduling path, so
    /// the exported trace is bit-identical across thread counts.
    pub fn run_traced(
        &self,
        seq: &OpSequence,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        self.run_inner(seq, None, Some(tel))
    }

    /// Runs the sequence with per-bank circuit breaking: PIM kernels are
    /// attributed to the registry's bank domains, failures feed the
    /// domain breakers, and kernels whose breaker is open skip PIM and run
    /// on the GPU directly. The registry persists state across calls, so
    /// repeated runs (e.g. serving requests) accumulate health history.
    ///
    /// Fails with [`RunError::HealthDomainMismatch`] if the registry was
    /// sized for a different device.
    pub fn run_with_health(
        &self,
        seq: &OpSequence,
        registry: &mut HealthRegistry,
    ) -> Result<ExecutionReport, RunError> {
        self.check_domains(registry)?;
        self.run_inner(seq, Some(registry), None)
    }

    /// [`run_with_health`](Self::run_with_health) with telemetry; breaker
    /// transitions additionally land on the trace's `health` track.
    pub fn run_with_health_traced(
        &self,
        seq: &OpSequence,
        registry: &mut HealthRegistry,
        tel: &mut Telemetry,
    ) -> Result<ExecutionReport, RunError> {
        self.check_domains(registry)?;
        self.run_inner(seq, Some(registry), Some(tel))
    }

    fn check_domains(&self, registry: &HealthRegistry) -> Result<(), RunError> {
        if let Some((dev, _)) = self.pim {
            let device = dev.dram.geometry.die_groups;
            if registry.domains() != device {
                return Err(RunError::HealthDomainMismatch {
                    registry: registry.domains(),
                    device,
                });
            }
        }
        Ok(())
    }

    fn run_inner(
        &self,
        seq: &OpSequence,
        mut health: Option<&mut HealthRegistry>,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<ExecutionReport, RunError> {
        let n = seq.params.n() as u64;
        let mut report = ExecutionReport::default();
        let mut cache = L2Cache::new(self.gpu.config().l2_bytes);
        let mut now = 0.0f64;
        let mut last_exec = Executor::Gpu;
        let mut pim_batch: Vec<(PimKernelSpec, &'static str)> = Vec::new();
        let mut injector = self.fault.map(FaultInjector::new);
        let mut pim_disabled = false;
        let mut kernel_idx = 0u64;

        for op in &seq.ops {
            let target = if self.pim.is_some() && !pim_disabled {
                op.executor
            } else {
                Executor::Gpu
            };
            match target {
                Executor::Pim => {
                    let (instr, limbs) = match op.kind {
                        OpKind::Ew { instr, limbs } => (instr, limbs),
                        _ => unreachable!("only element-wise ops are offloaded"),
                    };
                    if last_exec != Executor::Pim {
                        if let Some(t) = tel.as_deref_mut() {
                            t.transition(now, now + TRANSITION_NS);
                        }
                        now += TRANSITION_NS;
                        report.transitions += 1;
                        last_exec = Executor::Pim;
                    }
                    pim_batch.push((
                        PimKernelSpec {
                            instr,
                            limbs,
                            n: n as usize,
                        },
                        op.label,
                    ));
                }
                Executor::Gpu => {
                    if last_exec != Executor::Gpu {
                        // Drain the queued PIM kernels first.
                        if let Some(pim) = self.pim {
                            self.flush_pim(
                                &mut pim_batch,
                                &mut now,
                                &mut report,
                                pim,
                                &mut injector,
                                &mut pim_disabled,
                                health.as_deref_mut(),
                                &mut kernel_idx,
                                tel.as_deref_mut(),
                            )?;
                        }
                        if let Some(t) = tel.as_deref_mut() {
                            t.transition(now, now + TRANSITION_NS);
                        }
                        now += TRANSITION_NS;
                        report.transitions += 1;
                        last_exec = Executor::Gpu;
                    }
                    let (class_label, class) = Self::kernel_class(&op.kind);
                    let desc = self.describe_gpu_op(op, n, class, &mut cache);
                    let cost = self.gpu.cost(&desc);
                    report.gpu_dram_bytes += desc.dram_bytes();
                    report.energy_j += cost.energy_j;
                    let start = now;
                    now += cost.time_ns;
                    if let Some(t) = tel.as_deref_mut() {
                        t.gpu_kernel(
                            op.label,
                            class_label,
                            start,
                            now,
                            desc.dram_bytes(),
                            cost.bandwidth_bound,
                            false,
                        );
                    }
                    report.push_segment(GanttSegment {
                        start_ns: start,
                        end_ns: now,
                        executor: Executor::Gpu,
                        class: class_label,
                        label: op.label,
                        degraded: false,
                    });
                }
            }
        }
        if let Some(pim) = self.pim {
            self.flush_pim(
                &mut pim_batch,
                &mut now,
                &mut report,
                pim,
                &mut injector,
                &mut pim_disabled,
                health,
                &mut kernel_idx,
                tel.as_deref_mut(),
            )?;
        }
        report.total_ns = now;
        if let Some(t) = tel {
            t.run_complete(&report);
        }
        Ok(report)
    }

    /// Drains queued PIM kernels: executes each (under fault injection when
    /// configured), retries transient integrity failures under the retry
    /// policy, and re-executes on the GPU what PIM cannot complete. With a
    /// [`HealthRegistry`] attached, routing is breaker-gated per bank
    /// domain instead of the legacy global `pim_disabled` switch.
    #[allow(clippy::too_many_arguments)]
    fn flush_pim(
        &self,
        batch: &mut Vec<(PimKernelSpec, &'static str)>,
        now: &mut f64,
        report: &mut ExecutionReport,
        pim: (&PimDeviceConfig, LayoutPolicy),
        injector: &mut Option<FaultInjector>,
        pim_disabled: &mut bool,
        mut health: Option<&mut HealthRegistry>,
        kernel_idx: &mut u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        if batch.is_empty() {
            return Ok(());
        }
        let exec = PimExecutor::new(pim.0, pim.1);
        for (spec, label) in batch.drain(..) {
            let kid = *kernel_idx;
            *kernel_idx += 1;
            match health.as_deref_mut() {
                Some(reg) => {
                    self.run_kernel_with_health(
                        &exec,
                        spec,
                        label,
                        now,
                        report,
                        pim.0,
                        injector,
                        reg,
                        kid,
                        tel.as_deref_mut(),
                    )?;
                }
                None => {
                    self.run_kernel_legacy(
                        &exec,
                        spec,
                        label,
                        now,
                        report,
                        pim.0,
                        injector,
                        pim_disabled,
                        kid,
                        tel.as_deref_mut(),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Charges a PIM attempt (successful or wasted) to the timeline.
    #[allow(clippy::too_many_arguments)]
    fn charge_pim_segment(
        &self,
        r: &pim::exec::PimKernelResult,
        label: &'static str,
        degraded: bool,
        now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        tel: Option<&mut Telemetry>,
    ) {
        let start = *now;
        *now += r.latency_ns;
        report.energy_j += r.energy_joules(dev);
        report.pim_dram_bytes += r.bytes_internal;
        if let Some(t) = tel {
            t.pim_kernel(label, start, *now, r, degraded);
        }
        report.push_segment(GanttSegment {
            start_ns: start,
            end_ns: *now,
            executor: Executor::Pim,
            class: "element-wise",
            label,
            degraded,
        });
    }

    /// Computes (and charges, if affordable) the backoff before the next
    /// retry of kernel `kid`. Returns false when the backoff budget is
    /// exhausted and the kernel should fall back instead.
    fn charge_backoff(
        &self,
        kid: u64,
        attempt: u32,
        backoff_spent: &mut f64,
        now: &mut f64,
        report: &mut ExecutionReport,
        tel: Option<&mut Telemetry>,
    ) -> bool {
        let b = self.retry.backoff_ns(kid, attempt);
        if *backoff_spent + b > self.retry.budget_ns {
            return false;
        }
        if let Some(t) = tel {
            if b > 0.0 {
                t.backoff(*now, *now + b);
            }
        }
        *backoff_spent += b;
        *now += b;
        report.backoff_ns += b;
        true
    }

    /// The legacy (registry-free) degradation path: policy-driven retries
    /// and a global PIM kill switch on the first hard fault.
    #[allow(clippy::too_many_arguments)]
    fn run_kernel_legacy(
        &self,
        exec: &PimExecutor<'_>,
        spec: PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        injector: &mut Option<FaultInjector>,
        pim_disabled: &mut bool,
        kid: u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        if *pim_disabled {
            // A prior hard fault took the PIM path out; the rest of the
            // batch re-executes on the GPU.
            self.fallback_on_gpu(exec, &spec, label, now, report, tel);
            return Ok(());
        }
        let mut retries = 0u32;
        let mut backoff_spent = 0.0f64;
        loop {
            let outcome = match injector.as_mut() {
                Some(inj) => exec.execute_with_faults(&spec, inj),
                None => exec.execute(&spec),
            };
            match outcome {
                Ok(r) => {
                    self.charge_pim_segment(&r, label, false, now, report, dev, tel.as_deref_mut());
                    break;
                }
                Err(PimError::IntegrityViolation(violation)) => {
                    report.faults_detected += 1;
                    if let Some(t) = tel.as_deref_mut() {
                        t.fault();
                    }
                    // The failed attempt still burned time and energy.
                    self.charge_pim_segment(
                        &violation.wasted,
                        label,
                        true,
                        now,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    if violation.is_permanent() {
                        // Hard fault (stuck MMAC lane): retrying on PIM
                        // cannot succeed — disable the path for good.
                        *pim_disabled = true;
                    } else if retries < self.retry.max_retries
                        && self.charge_backoff(
                            kid,
                            retries + 1,
                            &mut backoff_spent,
                            now,
                            report,
                            tel.as_deref_mut(),
                        )
                    {
                        retries += 1;
                        report.pim_retries += 1;
                        if let Some(t) = tel.as_deref_mut() {
                            t.retry();
                        }
                        continue;
                    }
                    report.pim_fallbacks += 1;
                    if let Some(t) = tel.as_deref_mut() {
                        t.fallback();
                    }
                    self.fallback_on_gpu(exec, &spec, label, now, report, tel);
                    break;
                }
                Err(e) => return Err(RunError::Pim(e)),
            }
        }
        Ok(())
    }

    /// The breaker-gated degradation path: the kernel is attributed to a
    /// bank health domain, an open breaker routes it straight to the GPU,
    /// and its outcome feeds the domain's breaker. Faults are scoped to
    /// the owning domain ([`PimExecutor::execute_with_faults_scoped`]), so
    /// a stuck lane sickens one die group instead of the whole device.
    #[allow(clippy::too_many_arguments)]
    fn run_kernel_with_health(
        &self,
        exec: &PimExecutor<'_>,
        spec: PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
        dev: &PimDeviceConfig,
        injector: &mut Option<FaultInjector>,
        reg: &mut HealthRegistry,
        kid: u64,
        mut tel: Option<&mut Telemetry>,
    ) -> Result<(), RunError> {
        let domains = reg.domains() as u32;
        let bank = reg.assign_domain();
        let domain = BankDomain::new(bank, domains);
        let (decision, transition) = reg.decide(bank, *now);
        if let Some(t) = transition {
            if let Some(tl) = tel.as_deref_mut() {
                tl.breaker_transition(&t, *now);
            }
            report.breaker_transitions.push(t);
        }
        if decision == PathDecision::Skip {
            report.breaker_skips += 1;
            if let Some(tl) = tel.as_deref_mut() {
                tl.breaker_skip();
            }
            self.fallback_on_gpu(exec, &spec, label, now, report, tel);
            return Ok(());
        }
        let mut retries = 0u32;
        let mut backoff_spent = 0.0f64;
        loop {
            let outcome = match injector.as_mut() {
                Some(inj) => exec.execute_with_faults_scoped(&spec, inj, Some(domain)),
                None => exec.execute(&spec),
            };
            match outcome {
                Ok(r) => {
                    self.charge_pim_segment(&r, label, false, now, report, dev, tel.as_deref_mut());
                    if let Some(t) = reg.on_success(bank, *now) {
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.breaker_transition(&t, *now);
                        }
                        report.breaker_transitions.push(t);
                    }
                    break;
                }
                Err(PimError::IntegrityViolation(violation)) => {
                    report.faults_detected += 1;
                    reg.counters.faults_detected += 1;
                    if let Some(tl) = tel.as_deref_mut() {
                        tl.fault();
                    }
                    self.charge_pim_segment(
                        &violation.wasted,
                        label,
                        true,
                        now,
                        report,
                        dev,
                        tel.as_deref_mut(),
                    );
                    let permanent = violation.is_permanent();
                    // A half-open probe gets exactly one attempt; hard
                    // faults are never retried.
                    if !permanent
                        && decision == PathDecision::Allow
                        && retries < self.retry.max_retries
                        && self.charge_backoff(
                            kid,
                            retries + 1,
                            &mut backoff_spent,
                            now,
                            report,
                            tel.as_deref_mut(),
                        )
                    {
                        retries += 1;
                        report.pim_retries += 1;
                        reg.counters.pim_retries += 1;
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.retry();
                        }
                        continue;
                    }
                    if let Some(t) = reg.on_failure(bank, permanent, *now, violation.cause()) {
                        if let Some(tl) = tel.as_deref_mut() {
                            tl.breaker_transition(&t, *now);
                        }
                        report.breaker_transitions.push(t);
                    }
                    report.pim_fallbacks += 1;
                    reg.counters.gpu_fallbacks += 1;
                    if let Some(tl) = tel.as_deref_mut() {
                        tl.fallback();
                    }
                    self.fallback_on_gpu(exec, &spec, label, now, report, tel);
                    break;
                }
                Err(e) => return Err(RunError::Pim(e)),
            }
        }
        Ok(())
    }

    /// Re-executes a failed PIM kernel on the GPU. The operands are
    /// PIM-resident, so the kernel streams everything through DRAM with no
    /// L2 reuse, and the re-dispatch pays one PIM→GPU handoff.
    fn fallback_on_gpu(
        &self,
        exec: &PimExecutor<'_>,
        spec: &PimKernelSpec,
        label: &'static str,
        now: &mut f64,
        report: &mut ExecutionReport,
        mut tel: Option<&mut Telemetry>,
    ) {
        if let Some(t) = tel.as_deref_mut() {
            t.transition(*now, *now + TRANSITION_NS);
        }
        *now += TRANSITION_NS;
        report.transitions += 1;
        let p = spec.instr.profile();
        let dram_read = (p.total_reads() * spec.limbs * spec.n * 4) as u64;
        let dram_write = exec.gpu_bytes_equivalent(spec) - dram_read;
        let int_ops = (spec.n * spec.limbs) as u64 * spec.instr.mmac_ops_per_element() as u64 * 6;
        let desc = KernelDesc::new(KernelClass::ElementWise, int_ops, dram_read, dram_write);
        let cost = self.gpu.cost(&desc);
        report.gpu_dram_bytes += desc.dram_bytes();
        report.energy_j += cost.energy_j;
        let start = *now;
        *now += cost.time_ns;
        if let Some(t) = tel {
            t.gpu_kernel(
                label,
                "element-wise",
                start,
                *now,
                desc.dram_bytes(),
                cost.bandwidth_bound,
                true,
            );
        }
        report.push_segment(GanttSegment {
            start_ns: start,
            end_ns: *now,
            executor: Executor::Gpu,
            class: "element-wise",
            label,
            degraded: true,
        });
    }

    fn describe_gpu_op(
        &self,
        op: &Op,
        n: u64,
        class: KernelClass,
        cache: &mut L2Cache,
    ) -> KernelDesc {
        let int_ops = self.int_ops(&op.kind, n);
        let mut dram_read = 0u64;
        let mut dram_write = 0u64;
        let mut l2 = 0u64;
        match op.kind {
            OpKind::WriteBack { bytes } => {
                // Explicit flush: all bytes go to DRAM (§V-C).
                dram_write = bytes;
            }
            _ => {
                for r in &op.reads {
                    let missed = cache.read(r.id, r.bytes as usize);
                    dram_read += missed;
                    l2 += r.bytes - missed;
                }
                for w in &op.writes {
                    if w.bytes as usize > self.gpu.config().l2_bytes {
                        dram_write += w.bytes;
                    } else {
                        cache.write(w.id, w.bytes as usize);
                        l2 += w.bytes;
                    }
                }
            }
        }
        let mut k = KernelDesc::new(class, int_ops, dram_read, dram_write);
        k.l2_bytes = l2;
        k
    }
}

/// Estimates the DRAM footprint of a sequence: peak live data
/// (evk + plaintext + ciphertext objects), used for the OoM checks of
/// §VIII-B.
pub fn footprint_bytes(seq: &OpSequence) -> u64 {
    let mut seen = std::collections::HashSet::new();
    let mut total = 0u64;
    for op in &seq.ops {
        for r in op.reads.iter().chain(op.writes.iter()) {
            if matches!(
                r.kind,
                ObjKind::Evk | ObjKind::Plaintext | ObjKind::Ciphertext
            ) && seen.insert(r.id)
            {
                total += r.bytes;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{Builder, LinTransStyle};
    use crate::params::ParamSet;
    use crate::passes::{fuse, offload, FusionConfig, OffloadPolicy};
    use gpu::config::{GpuConfig, LibraryProfile};

    fn gpu_model() -> GpuModel {
        GpuModel::new(GpuConfig::a100_80gb(), LibraryProfile::cheddar())
    }

    fn lt(reorder: bool) -> OpSequence {
        let mut b = Builder::new(ParamSet::paper_default());
        b.lintrans(54, 8, LinTransStyle::Hoisting, reorder)
    }

    #[test]
    fn gpu_only_schedule_produces_breakdown() {
        let m = gpu_model();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::gpu_baseline());
        let r = Scheduler::gpu_only(&m).run(&seq).unwrap();
        assert!(r.total_ns > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.fraction("element-wise") > 0.1, "EW must be visible");
        assert!(r.fraction("(I)NTT") > 0.05);
        assert_eq!(r.transitions, 0);
        assert!(r.pim_dram_bytes == 0);
    }

    #[test]
    fn pim_schedule_beats_gpu_only() {
        // The headline claim, at linear-transform granularity (Fig. 4a).
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();

        let mut gpu_seq = lt(true);
        fuse(&mut gpu_seq, &FusionConfig::gpu_baseline());
        let gpu_r = Scheduler::gpu_only(&m).run(&gpu_seq).unwrap();

        let mut pim_seq = lt(true);
        fuse(&mut pim_seq, &FusionConfig::full());
        offload(
            &mut pim_seq,
            &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0),
        );
        let pim_r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&pim_seq)
            .unwrap();

        assert!(
            pim_r.total_ns < gpu_r.total_ns,
            "PIM {:.1} µs must beat GPU-only {:.1} µs",
            pim_r.total_ns / 1e3,
            gpu_r.total_ns / 1e3
        );
        assert!(
            pim_r.gpu_dram_bytes < gpu_r.gpu_dram_bytes / 2,
            "PIM must slash GPU-side DRAM traffic (§V-D): {} vs {}",
            pim_r.gpu_dram_bytes,
            gpu_r.gpu_dram_bytes
        );
        assert!(pim_r.transitions >= 2);
        assert!(pim_r.energy_j < gpu_r.energy_j, "energy must also improve");
    }

    #[test]
    fn transitions_are_counted_and_bounded() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        // Transition overhead must stay negligible (§V-C).
        let overhead = r.transitions as f64 * TRANSITION_NS;
        assert!(overhead < 0.25 * r.total_ns, "transitions must be minor");
    }

    #[test]
    fn transient_faults_retry_then_fall_back_to_gpu() {
        // Bank flip probability 1: every PIM attempt fails its integrity
        // check, so each kernel burns MAX_PIM_RETRIES retries and then
        // re-executes on the GPU. The run still completes.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let kernels = clean
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Pim)
            .count() as u32;
        assert!(kernels > 0, "offload must produce PIM kernels");

        let plan = FaultPlan::none().with_seed(11).with_bank_flips(1.0);
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert_eq!(r.faults_detected, kernels * (1 + MAX_PIM_RETRIES));
        assert_eq!(r.pim_retries, kernels * MAX_PIM_RETRIES);
        // Wasted attempts plus one GPU re-execution per kernel.
        assert_eq!(
            r.degraded_segments,
            kernels * (1 + MAX_PIM_RETRIES) + kernels
        );
        assert!(
            r.total_ns > clean.total_ns,
            "degraded run must be slower: {} vs {}",
            r.total_ns,
            clean.total_ns
        );
    }

    #[test]
    fn hard_fault_permanently_disables_pim() {
        // A stuck MMAC lane is a hard fault: no retries, one wasted PIM
        // attempt, and the rest of the run stays on the GPU.
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let plan = FaultPlan::none().with_seed(5).with_stuck_lane(3);
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(plan)
            .run(&seq)
            .unwrap();
        assert_eq!(r.faults_detected, 1, "first attempt detects the hard fault");
        assert_eq!(r.pim_retries, 0, "hard faults are never retried");
        let pim_segments = r
            .segments
            .iter()
            .filter(|s| s.executor == Executor::Pim)
            .count();
        assert_eq!(pim_segments, 1, "only the wasted attempt touches PIM");
        assert!(
            r.degraded_segments >= 2,
            "wasted attempt + GPU re-execution"
        );
        // The work still completes; every degraded GPU segment is marked.
        assert!(r
            .segments
            .iter()
            .any(|s| s.executor == Executor::Gpu && s.degraded));
    }

    #[test]
    fn benign_fault_plan_changes_nothing() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut seq = lt(true);
        fuse(&mut seq, &FusionConfig::full());
        offload(&mut seq, &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0));
        let clean = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&seq)
            .unwrap();
        let benign = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .with_fault_plan(FaultPlan::none())
            .run(&seq)
            .unwrap();
        assert_eq!(clean.total_ns, benign.total_ns);
        assert_eq!(benign.faults_detected, 0);
        assert_eq!(benign.degraded_segments, 0);
    }

    #[test]
    fn footprint_counts_unique_objects() {
        let seq = lt(true);
        let fp = footprint_bytes(&seq);
        // 7 evks of ~2·4·(54+14) limbs minimum.
        let evk = ParamSet::paper_default().evk_bytes() as u64;
        assert!(fp > 7 * evk / 2, "footprint must include the evks");
    }

    #[test]
    fn writeback_bytes_hit_dram() {
        let m = gpu_model();
        let dev = PimDeviceConfig::a100_near_bank();
        let mut with_wb = lt(true);
        fuse(&mut with_wb, &FusionConfig::full());
        let stats = offload(
            &mut with_wb,
            &OffloadPolicy::from_parts(1802.0, 16.0, 2000.0),
        );
        let r = Scheduler::with_pim(&m, &dev, LayoutPolicy::ColumnPartitioned)
            .run(&with_wb)
            .unwrap();
        assert!(r.gpu_dram_bytes >= stats.writeback_bytes);
    }
}
