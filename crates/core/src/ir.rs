//! Op-level intermediate representation of FHE op sequences.
//!
//! Every CKKS function decomposes into (I)NTT, BConv, element-wise blocks,
//! and automorphism (§II-B). The IR keeps exactly that granularity, plus
//! the data objects each op touches (for the L2 model) and fusion/offload
//! annotations (filled by [`crate::passes`]).

use pim::isa::PimInstruction;

use crate::params::ParamSet;

/// What a data object is, which determines reuse behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A ciphertext polynomial (working data).
    Ciphertext,
    /// An evaluation-key polynomial (large, single-use streams).
    Evk,
    /// An encoded plaintext (single-use streams).
    Plaintext,
    /// A transient intermediate.
    Temp,
}

/// A reference to a data object with the touched byte count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjRef {
    /// Stable object identifier.
    pub id: u64,
    /// Bytes touched by the op.
    pub bytes: u64,
    /// Object class.
    pub kind: ObjKind,
}

/// Which execution engine runs an op (set by the offload pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Regular GPU kernel.
    Gpu,
    /// Anaheim PIM kernel.
    Pim,
}

/// Fusion-opportunity annotations consumed by [`crate::passes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseTag {
    /// One digit of a KeyMult inner product; group id joins the digits that
    /// BasicFuse merges into a `PAccum⟨D⟩`.
    KeyMult {
        /// Fusion group.
        group: u32,
    },
    /// One term of a constant accumulation; BasicFuse merges a group into
    /// `CAccum⟨K⟩`.
    ConstAccum {
        /// Fusion group.
        group: u32,
    },
    /// An automorphism whose result is immediately accumulated; AutFuse
    /// merges it with the following `Add` into an `AutAccum` kernel.
    AutThenAccum {
        /// Fusion group (pairs the Aut with its Add).
        group: u32,
    },
}

/// The op kinds of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Forward NTT over `limbs` limbs.
    Ntt {
        /// Limbs transformed.
        limbs: usize,
    },
    /// Inverse NTT over `limbs` limbs.
    Intt {
        /// Limbs transformed.
        limbs: usize,
    },
    /// Basis conversion from `src_limbs` to `dst_limbs` limbs.
    BConv {
        /// Source limbs.
        src_limbs: usize,
        /// Destination limbs.
        dst_limbs: usize,
    },
    /// An element-wise block over `limbs` limbs, with its natural PIM
    /// instruction mapping.
    Ew {
        /// The Table II instruction this block lowers to.
        instr: PimInstruction,
        /// Limbs processed.
        limbs: usize,
    },
    /// Automorphism (data permutation) over `limbs` limbs; `fused_accum`
    /// marks the AutAccum kernel produced by AutFuse.
    Aut {
        /// Limbs permuted.
        limbs: usize,
        /// Whether the accumulation is fused into the same kernel.
        fused_accum: bool,
    },
    /// Explicit L2→DRAM write-back for PIM coherence (§V-C).
    WriteBack {
        /// Bytes flushed.
        bytes: u64,
    },
}

impl OpKind {
    /// The limb count the op processes (0 for write-backs).
    pub fn limbs(&self) -> usize {
        match *self {
            OpKind::Ntt { limbs }
            | OpKind::Intt { limbs }
            | OpKind::Ew { limbs, .. }
            | OpKind::Aut { limbs, .. } => limbs,
            OpKind::BConv { dst_limbs, .. } => dst_limbs,
            OpKind::WriteBack { .. } => 0,
        }
    }
}

/// One op of a sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// The op kind.
    pub kind: OpKind,
    /// Objects read.
    pub reads: Vec<ObjRef>,
    /// Objects written.
    pub writes: Vec<ObjRef>,
    /// Fusion annotation.
    pub fuse: Option<FuseTag>,
    /// Assigned executor (default GPU; the offload pass moves eligible
    /// element-wise blocks to PIM).
    pub executor: Executor,
    /// Human-readable label for Gantt charts.
    pub label: &'static str,
}

impl Op {
    /// Creates a GPU op.
    pub fn new(kind: OpKind, label: &'static str) -> Self {
        Self {
            kind,
            reads: Vec::new(),
            writes: Vec::new(),
            fuse: None,
            executor: Executor::Gpu,
            label,
        }
    }

    /// Adds a read.
    pub fn read(mut self, r: ObjRef) -> Self {
        self.reads.push(r);
        self
    }

    /// Adds a write.
    pub fn write(mut self, w: ObjRef) -> Self {
        self.writes.push(w);
        self
    }

    /// Sets the fusion tag.
    pub fn fused(mut self, tag: FuseTag) -> Self {
        self.fuse = Some(tag);
        self
    }

    /// Whether the offload pass may move this op to PIM: element-wise
    /// blocks only (§V-A: (I)NTT/BConv are compute-bound, automorphism's
    /// data movement is hostile to PIM).
    pub fn pim_eligible(&self) -> bool {
        matches!(self.kind, OpKind::Ew { .. })
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.reads.iter().map(|r| r.bytes).sum()
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.writes.iter().map(|w| w.bytes).sum()
    }
}

/// Allocates fresh object ids.
#[derive(Debug, Default)]
pub struct ObjAlloc {
    next: u64,
}

impl ObjAlloc {
    /// A fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a new object reference.
    pub fn fresh(&mut self, kind: ObjKind, bytes: u64) -> ObjRef {
        let id = self.next;
        self.next += 1;
        ObjRef { id, bytes, kind }
    }

    /// Number of ids handed out.
    pub fn count(&self) -> u64 {
        self.next
    }
}

/// Aggregate op counts of a sequence, comparable with the functional
/// library's [`ckks::opcount`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSummary {
    /// Forward-NTT limb count.
    pub ntt_limbs: u64,
    /// Inverse-NTT limb count.
    pub intt_limbs: u64,
    /// BConv source×target limb products.
    pub bconv_limb_products: u64,
    /// Element-wise limb ops (compound instructions count their underlying
    /// per-limb MAC pairs, matching the functional library's accounting).
    pub ew_limb_ops: u64,
    /// Automorphism limb count.
    pub automorphism_limbs: u64,
}

impl OpSummary {
    /// Total (I)NTT limbs (the Fig. 1 table metric).
    pub fn total_ntt_limbs(&self) -> u64 {
        self.ntt_limbs + self.intt_limbs
    }
}

/// A complete op sequence with its parameter descriptor.
#[derive(Debug, Clone)]
pub struct OpSequence {
    /// The parameter set the ops were generated under.
    pub params: ParamSet,
    /// The ops in issue order.
    pub ops: Vec<Op>,
    /// Number of key switches (ModDown bundles), maintained by the
    /// builders; matches the functional library's `keyswitches` counter.
    pub keyswitches: u64,
}

impl OpSequence {
    /// An empty sequence.
    pub fn new(params: ParamSet) -> Self {
        Self {
            params,
            ops: Vec::new(),
            keyswitches: 0,
        }
    }

    /// Appends an op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends all ops of another sequence (parameters must match).
    ///
    /// # Panics
    ///
    /// Panics if the parameter sets differ.
    pub fn extend(&mut self, other: OpSequence) {
        assert_eq!(self.params, other.params, "parameter mismatch");
        self.keyswitches += other.keyswitches;
        self.ops.extend(other.ops);
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Aggregate counters (for cross-validation with the functional
    /// library and the Fig. 1 table).
    pub fn summary(&self) -> OpSummary {
        let mut s = OpSummary::default();
        for op in &self.ops {
            match op.kind {
                OpKind::Ntt { limbs } => s.ntt_limbs += limbs as u64,
                OpKind::Intt { limbs } => s.intt_limbs += limbs as u64,
                OpKind::BConv {
                    src_limbs,
                    dst_limbs,
                } => s.bconv_limb_products += (src_limbs * dst_limbs) as u64,
                OpKind::Ew { instr, limbs } => {
                    let factor = match instr {
                        PimInstruction::PAccum(k) => 2 * k,
                        PimInstruction::CAccum(k) => 2 * k,
                        PimInstruction::PMult | PimInstruction::PMac => 2,
                        PimInstruction::Tensor => 4,
                        PimInstruction::TensorSq => 3,
                        PimInstruction::ModDownEp => 2,
                        _ => 1,
                    };
                    s.ew_limb_ops += (factor * limbs) as u64;
                }
                OpKind::Aut { limbs, .. } => s.automorphism_limbs += limbs as u64,
                OpKind::WriteBack { .. } => {}
            }
        }
        s
    }

    /// Total DRAM bytes the sequence would touch with zero cache reuse.
    pub fn ideal_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| o.bytes_read() + o.bytes_written())
            .sum()
    }

    /// Bytes of evk and plaintext reads (the single-use streams PIM
    /// eliminates from the GPU side, §V-D).
    pub fn stream_bytes(&self) -> u64 {
        self.ops
            .iter()
            .flat_map(|o| o.reads.iter())
            .filter(|r| matches!(r.kind, ObjKind::Evk | ObjKind::Plaintext))
            .map(|r| r.bytes)
            .sum()
    }

    /// Bytes of evaluation-key reads alone, counting every read (an object
    /// read twice is charged twice). This is the sequence's *uncached* evk
    /// traffic: what a run pulls from DRAM with no evk cache and no
    /// same-tenant amortization — the baseline the serving layer's
    /// hit/miss/saved accounting conserves against.
    pub fn evk_read_bytes(&self) -> u64 {
        self.ops
            .iter()
            .flat_map(|o| o.reads.iter())
            .filter(|r| r.kind == ObjKind::Evk)
            .map(|r| r.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ParamSet {
        ParamSet::paper_default()
    }

    #[test]
    fn op_builder_pattern() {
        let mut alloc = ObjAlloc::new();
        let a = alloc.fresh(ObjKind::Ciphertext, 1024);
        let b = alloc.fresh(ObjKind::Evk, 4096);
        let op = Op::new(
            OpKind::Ew {
                instr: PimInstruction::Add,
                limbs: 4,
            },
            "test",
        )
        .read(a)
        .read(b)
        .write(alloc.fresh(ObjKind::Temp, 1024));
        assert_eq!(op.bytes_read(), 5120);
        assert_eq!(op.bytes_written(), 1024);
        assert!(op.pim_eligible());
        assert_eq!(alloc.count(), 3);
    }

    #[test]
    fn only_elementwise_is_pim_eligible() {
        let ntt = Op::new(OpKind::Ntt { limbs: 4 }, "ntt");
        let aut = Op::new(
            OpKind::Aut {
                limbs: 4,
                fused_accum: false,
            },
            "aut",
        );
        let ew = Op::new(
            OpKind::Ew {
                instr: PimInstruction::Mult,
                limbs: 4,
            },
            "mult",
        );
        assert!(!ntt.pim_eligible());
        assert!(!aut.pim_eligible());
        assert!(ew.pim_eligible());
    }

    #[test]
    fn summary_counts() {
        let mut seq = OpSequence::new(params());
        seq.push(Op::new(OpKind::Ntt { limbs: 10 }, "ntt"));
        seq.push(Op::new(OpKind::Intt { limbs: 5 }, "intt"));
        seq.push(Op::new(
            OpKind::BConv {
                src_limbs: 14,
                dst_limbs: 54,
            },
            "bconv",
        ));
        seq.push(Op::new(
            OpKind::Ew {
                instr: PimInstruction::PAccum(4),
                limbs: 68,
            },
            "keymult",
        ));
        let s = seq.summary();
        assert_eq!(s.ntt_limbs, 10);
        assert_eq!(s.intt_limbs, 5);
        assert_eq!(s.total_ntt_limbs(), 15);
        assert_eq!(s.bconv_limb_products, 14 * 54);
        assert_eq!(s.ew_limb_ops, 8 * 68);
    }

    #[test]
    fn stream_bytes_filters_by_kind() {
        let mut alloc = ObjAlloc::new();
        let mut seq = OpSequence::new(params());
        let ct = alloc.fresh(ObjKind::Ciphertext, 100);
        let evk = alloc.fresh(ObjKind::Evk, 1000);
        let pt = alloc.fresh(ObjKind::Plaintext, 10);
        seq.push(
            Op::new(
                OpKind::Ew {
                    instr: PimInstruction::Mac,
                    limbs: 1,
                },
                "mac",
            )
            .read(ct)
            .read(evk)
            .read(pt),
        );
        assert_eq!(seq.stream_bytes(), 1010);
        assert_eq!(seq.ideal_bytes(), 1110);
        assert_eq!(seq.evk_read_bytes(), 1000, "evk reads alone");
    }

    #[test]
    fn evk_read_bytes_charges_repeat_reads() {
        // MinKS-style reuse reads the same evk object once per step; the
        // uncached baseline charges each read.
        let mut alloc = ObjAlloc::new();
        let mut seq = OpSequence::new(params());
        let evk = alloc.fresh(ObjKind::Evk, 500);
        for _ in 0..3 {
            seq.push(
                Op::new(
                    OpKind::Ew {
                        instr: PimInstruction::PMac,
                        limbs: 1,
                    },
                    "pmac",
                )
                .read(evk),
            );
        }
        assert_eq!(seq.evk_read_bytes(), 1500);
    }
}
