//! `anaheim-core` — the paper's primary contribution: the Anaheim software
//! framework that co-executes FHE CKKS workloads on a GPU and in-memory
//! PIM units (§V).
//!
//! The pipeline:
//!
//! 1. [`params`] — paper-scale CKKS parameter descriptors (Table IV),
//!    including the `D`-sweep used by Fig. 2b.
//! 2. [`ir`] + [`build`] — an op-level intermediate representation of FHE
//!    op sequences (ModUp, KeyMult, ModDown, element-wise blocks,
//!    automorphism) and builders for HADD/PMULT/HMULT/HROT, hoisted /
//!    MinKS / baseline linear transforms (Fig. 1, Fig. 5), and
//!    fftIter-decomposed bootstrapping.
//! 3. [`passes`] — kernel fusion (BasicFuse → `PAccum`/`CAccum`,
//!    AutFuse → `AutAccum`, ExtraFuse for the GPU-only baseline) and the
//!    PIM offload partitioner that carves out element-wise blocks and
//!    inserts the coherence write-backs of §V-C.
//! 4. [`schedule`] — the stream-ordered GPU↔PIM scheduler with transition
//!    overheads, the L2 model, and Gantt/energy reporting.
//! 5. [`framework`] — the top-level [`framework::Anaheim`] API tying a GPU
//!    model and a PIM device together, producing [`report::ExecutionReport`]s.
//! 6. [`telemetry`] — the deterministic observability glue: a
//!    [`telemetry::Telemetry`] sink (virtual-time spans + typed metrics,
//!    backed by the `obs` crate) that the scheduler, serving layer, and
//!    workload runner record into when tracing is requested.

pub mod build;
pub mod error;
pub mod framework;
pub mod health;
pub mod ir;
pub mod params;
pub mod passes;
pub mod report;
pub mod schedule;
pub mod telemetry;

pub use error::RunError;
pub use framework::{Anaheim, AnaheimConfig, ExecMode};
pub use health::{
    BankStatus, BreakerConfig, BreakerState, BreakerTransition, HealthCounters, HealthRegistry,
    HealthSnapshot, RetryPolicy,
};
pub use ir::{Op, OpKind, OpSequence};
pub use params::ParamSet;
pub use report::ExecutionReport;
pub use telemetry::Telemetry;
