//! Property-based tests for the arithmetic substrate.

use std::sync::Arc;

use ckks_math::modulus::Modulus;
use ckks_math::ntt::NttContext;
use ckks_math::poly::{Format, Poly};
use ckks_math::prime::generate_ntt_primes;
use ckks_math::rns::{BasisConverter, CrtReconstructor, UBig};
use proptest::prelude::*;

fn test_modulus() -> Modulus {
    Modulus::new(generate_ntt_primes(50, 1, 1 << 11)[0])
}

fn basis(n: usize, l: usize) -> Vec<Arc<NttContext>> {
    generate_ntt_primes(45, l, 2 * n as u64)
        .into_iter()
        .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
        .collect()
}

proptest! {
    #[test]
    fn field_laws(a in 0u64..u64::MAX, b in 0u64..u64::MAX, c in 0u64..u64::MAX) {
        let m = test_modulus();
        let (a, b, c) = (m.reduce(a), m.reduce(b), m.reduce(c));
        // Commutativity
        prop_assert_eq!(m.add(a, b), m.add(b, a));
        prop_assert_eq!(m.mul(a, b), m.mul(b, a));
        // Associativity
        prop_assert_eq!(m.add(m.add(a, b), c), m.add(a, m.add(b, c)));
        prop_assert_eq!(m.mul(m.mul(a, b), c), m.mul(a, m.mul(b, c)));
        // Distributivity
        prop_assert_eq!(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
        // Additive inverse
        prop_assert_eq!(m.add(a, m.neg(a)), 0);
        // mul_add coherence
        prop_assert_eq!(m.mul_add(a, b, c), m.add(m.mul(a, b), c));
    }

    #[test]
    fn multiplicative_inverse(a in 1u64..u64::MAX) {
        let m = test_modulus();
        let a = m.reduce(a);
        prop_assume!(a != 0);
        prop_assert_eq!(m.mul(a, m.inv(a)), 1);
    }

    #[test]
    fn ntt_roundtrip(seed in any::<u64>()) {
        let n = 128usize;
        let q = generate_ntt_primes(45, 1, 2 * n as u64)[0];
        let ctx = NttContext::new(n, Modulus::new(q));
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state % q
        };
        let mut a: Vec<u64> = (0..n).map(|_| next()).collect();
        let orig = a.clone();
        ctx.forward(&mut a);
        ctx.inverse(&mut a);
        prop_assert_eq!(a, orig);
    }

    #[test]
    fn ntt_is_linear(seed in any::<u64>()) {
        let n = 64usize;
        let q = generate_ntt_primes(45, 1, 2 * n as u64)[0];
        let m = Modulus::new(q);
        let ctx = NttContext::new(n, m);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            state % q
        };
        let a: Vec<u64> = (0..n).map(|_| next()).collect();
        let b: Vec<u64> = (0..n).map(|_| next()).collect();
        let mut sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        ctx.forward(&mut sum);
        let mut fa = a.clone();
        let mut fb = b.clone();
        ctx.forward(&mut fa);
        ctx.forward(&mut fb);
        let fsum: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.add(x, y)).collect();
        prop_assert_eq!(sum, fsum);
    }

    #[test]
    fn galois_permutation_is_bijective(g_idx in 0usize..32) {
        let n = 64usize;
        let q = generate_ntt_primes(40, 1, 2 * n as u64)[0];
        let ctx = NttContext::new(n, Modulus::new(q));
        let g = (2 * g_idx as u64 + 1) % (2 * n as u64);
        prop_assume!(g % 2 == 1);
        let perm = ctx.galois_permutation(g);
        let mut seen = vec![false; n];
        for &p in &perm {
            prop_assert!(!seen[p as usize], "permutation must be injective");
            seen[p as usize] = true;
        }
    }

    #[test]
    fn poly_ring_axioms(vals in prop::collection::vec(-1000i64..1000, 16)) {
        let b = basis(16, 2);
        let a = Poly::from_coeff_i64(&b, &vals);
        let zero = Poly::zero(&b, Format::Coeff);
        // a + 0 = a
        let mut s = a.clone();
        s.add_assign(&zero);
        for (l, w) in s.limbs().zip(a.limbs()) {
            prop_assert_eq!(l.data(), w.data());
        }
        // a - a = 0
        let mut d = a.clone();
        d.sub_assign(&a);
        prop_assert!(d.limbs().all(|l| l.data().iter().all(|&x| x == 0)));
    }

    #[test]
    fn eval_mul_commutes(v1 in prop::collection::vec(-50i64..50, 16),
                         v2 in prop::collection::vec(-50i64..50, 16)) {
        let b = basis(16, 2);
        let mut a = Poly::from_coeff_i64(&b, &v1);
        let mut c = Poly::from_coeff_i64(&b, &v2);
        a.to_eval();
        c.to_eval();
        let mut ac = a.clone();
        ac.mul_assign(&c);
        let mut ca = c.clone();
        ca.mul_assign(&a);
        for (l, w) in ac.limbs().zip(ca.limbs()) {
            prop_assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn bconv_exact_matches_crt(vals in prop::collection::vec(-100_000i64..100_000, 8)) {
        let n = 8;
        let all = basis(n, 4);
        let from = all[..2].to_vec();
        let to = all[2..].to_vec();
        let conv = BasisConverter::new(&from, &to);
        let src = Poly::from_coeff_i64(&from, &vals);
        let refs: Vec<&[u64]> = (0..2).map(|i| src.limb(i).data()).collect();
        let out = conv.convert_exact(&refs);
        let want = Poly::from_coeff_i64(&to, &vals);
        for (l, w) in out.iter().zip(want.limbs()) {
            prop_assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn crt_roundtrip(vals in prop::collection::vec(-1_000_000i64..1_000_000, 8)) {
        let b = basis(8, 3);
        let crt = CrtReconstructor::new(&b);
        let p = Poly::from_coeff_i64(&b, &vals);
        for (k, &v) in vals.iter().enumerate().take(8) {
            let residues: Vec<u64> = (0..3).map(|i| p.limb(i).data()[k]).collect();
            prop_assert_eq!(crt.reconstruct_centered_f64(&residues), v as f64);
        }
    }

    #[test]
    fn ubig_add_sub_roundtrip(a in any::<u64>(), b in any::<u64>(), m in 1u64..u64::MAX) {
        let mut x = UBig::from_u64(a).mul_small(b);
        let y = UBig::from_u64(b).mul_small(37);
        let orig = x.clone();
        x.add_assign(&y);
        x.sub_assign(&y);
        prop_assert_eq!(&x, &orig);
        // mod_small consistency with u128
        let val = a as u128 * b as u128;
        prop_assert_eq!(orig.mod_small(m), (val % m as u128) as u64);
    }

    #[test]
    fn automorphism_preserves_addition(v1 in prop::collection::vec(-100i64..100, 16),
                                       v2 in prop::collection::vec(-100i64..100, 16),
                                       g_idx in 0usize..16) {
        let b = basis(16, 1);
        let g = 2 * g_idx as u64 + 1;
        let a = Poly::from_coeff_i64(&b, &v1);
        let c = Poly::from_coeff_i64(&b, &v2);
        let mut sum = a.clone();
        sum.add_assign(&c);
        let phi_sum = sum.automorphism(g);
        let mut sum_phi = a.automorphism(g);
        sum_phi.add_assign(&c.automorphism(g));
        for (l, w) in phi_sum.limbs().zip(sum_phi.limbs()) {
            prop_assert_eq!(l.data(), w.data());
        }
    }
}
