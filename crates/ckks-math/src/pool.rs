//! Thread-local buffer pool for limb-sized `Vec<u64>` allocations.
//!
//! Every RNS limb is a `Vec<u64>` of length `n` (the ring degree), and the
//! hot CKKS path — HADD/HSUB, rescale, key switching — creates and drops
//! them at a furious rate. Each thread keeps small free-lists keyed by
//! buffer length, so steady-state evaluation recycles buffers instead of
//! hitting the allocator: [`Limb`](crate::poly::Limb) takes its storage
//! from here on construction and returns it on drop.
//!
//! The pool is intentionally simple:
//!
//! - **thread-local** — no locks; a buffer freed on a different thread than
//!   it was taken from just migrates free-lists, which is fine;
//! - **bounded** — at most `MAX_PER_BUCKET` buffers per length and
//!   `MAX_BUCKETS` distinct lengths are retained (a process touches only
//!   a handful of ring degrees), excess buffers fall back to the allocator;
//! - **content-agnostic** — recycled buffers hold stale residues; takers
//!   must fully overwrite ([`take_zeroed`] is provided where zero-init is
//!   actually wanted).

use std::cell::RefCell;
use std::collections::HashMap;

/// Retained buffers per distinct length.
const MAX_PER_BUCKET: usize = 64;

/// Retained distinct lengths.
const MAX_BUCKETS: usize = 16;

thread_local! {
    static FREE_LISTS: RefCell<HashMap<usize, Vec<Vec<u64>>>> = RefCell::new(HashMap::new());
}

/// Takes a buffer of exactly `len` words with **unspecified contents**; the
/// caller must overwrite every element before the values are read.
pub fn take(len: usize) -> Vec<u64> {
    if len == 0 {
        return Vec::new();
    }
    FREE_LISTS
        .with_borrow_mut(|lists| lists.get_mut(&len).and_then(Vec::pop))
        .unwrap_or_else(|| vec![0; len])
}

/// Takes a zero-filled buffer of exactly `len` words.
pub fn take_zeroed(len: usize) -> Vec<u64> {
    let mut buf = take(len);
    buf.fill(0);
    buf
}

/// Returns a buffer to this thread's pool (dropped if the pool is full or
/// the buffer's capacity no longer matches its length bucket).
pub fn give(buf: Vec<u64>) {
    let len = buf.len();
    if len == 0 || buf.capacity() < len {
        return;
    }
    FREE_LISTS.with_borrow_mut(|lists| {
        if let Some(bucket) = lists.get_mut(&len) {
            if bucket.len() < MAX_PER_BUCKET {
                bucket.push(buf);
            }
        } else if lists.len() < MAX_BUCKETS {
            lists.insert(len, vec![buf]);
        }
    });
}

/// Number of buffers currently pooled on this thread (all buckets).
pub fn pooled_buffers() -> usize {
    FREE_LISTS.with_borrow(|lists| lists.values().map(Vec::len).sum())
}

/// Drops every pooled buffer on this thread (tests / memory pressure).
pub fn clear() {
    FREE_LISTS.with_borrow_mut(HashMap::clear);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles() {
        clear();
        let mut a = take(256);
        assert_eq!(a.len(), 256);
        a[0] = 0xdead;
        let ptr = a.as_ptr();
        give(a);
        assert_eq!(pooled_buffers(), 1);
        let b = take(256);
        assert_eq!(b.as_ptr(), ptr, "buffer must be recycled");
        assert_eq!(b.len(), 256);
        give(b);
        clear();
    }

    #[test]
    fn take_zeroed_really_zeroes() {
        clear();
        let mut a = take(64);
        a.fill(7);
        give(a);
        let b = take_zeroed(64);
        assert!(b.iter().all(|&x| x == 0));
        clear();
    }

    #[test]
    fn bucket_capacity_is_bounded() {
        clear();
        for _ in 0..(MAX_PER_BUCKET + 10) {
            give(vec![0; 32]);
        }
        assert_eq!(pooled_buffers(), MAX_PER_BUCKET);
        clear();
    }

    #[test]
    fn distinct_lengths_use_distinct_buckets() {
        clear();
        give(vec![0; 16]);
        give(vec![0; 32]);
        assert_eq!(take(16).len(), 16);
        assert_eq!(take(32).len(), 32);
        clear();
    }
}
