//! Low-level arithmetic for RNS-CKKS: prime moduli, negacyclic NTT, RNS
//! polynomials, fast basis conversion (BConv), and randomness sampling.
//!
//! This crate is the numerical substrate of the Anaheim reproduction. The
//! `ckks` scheme crate builds keys, ciphertexts, and homomorphic evaluation
//! on top of these primitives; the `pim` crate reuses [`modulus::Modulus`] for
//! the functional model of the PIM MMAC units.
//!
//! # Example
//!
//! ```
//! use ckks_math::modulus::Modulus;
//! use ckks_math::prime::generate_ntt_primes;
//! use ckks_math::ntt::NttContext;
//!
//! let n = 1024;
//! let primes = generate_ntt_primes(50, 1, 2 * n as u64);
//! let ctx = NttContext::new(n, Modulus::new(primes[0]));
//! let mut a: Vec<u64> = (0..n as u64).collect();
//! let orig = a.clone();
//! ctx.forward(&mut a);
//! ctx.inverse(&mut a);
//! assert_eq!(a, orig);
//! ```

pub mod modulus;
pub mod ntt;
pub mod poly;
pub mod pool;
pub mod prime;
pub mod rns;
pub mod sampling;
pub mod tune;

pub use modulus::Modulus;
pub use ntt::NttContext;
pub use poly::{Format, Poly};
pub use rns::{BasisConverter, RnsBasis};
