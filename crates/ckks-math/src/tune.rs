//! Cost-model-driven parallelism tuner: decides, per call site, whether a
//! limb/digit/bank batch should run serially or fan out to the
//! [`parpool`] pool — and with how many fused chunk jobs.
//!
//! # Why a cost model instead of static gates
//!
//! The hot path used to gate fan-out on two constants (`EW_MIN_ELEMS`,
//! `NTT_MIN_N`). Those neither adapt to the thread count nor to the op
//! class, and on hosts that grant little real parallelism (contended
//! containers, cgroup-limited CI) they made the *small-ring* regime slower
//! with more threads: waking the pool costs ~10 µs, which swamps a 5-limb
//! n=1024 element-wise pass. The tuner replaces the constants with an
//! explicit model:
//!
//! ```text
//! serial_ns   = items · unit_work(class, elems_per_item) · per_elem_ns(class)
//! jobs        = min(items, threads)
//! speedup_cap = min(jobs, par_eff)            // par_eff: measured ceiling
//! parallel_ns = serial_ns / speedup_cap + dispatch_ns + jobs · job_ns
//! parallel  ⟺  speedup_cap > 1  ∧  serial_ns > parallel_ns · min_gain
//! ```
//!
//! `unit_work` is `elems_per_item` for element-wise classes and
//! `elems_per_item · log2(elems_per_item)` for NTT-shaped work. The chosen
//! chunking factor (`jobs`) fuses the per-item fan-out into at most
//! `threads` pool jobs ([`parpool::run_chunked`]), so pool overhead is paid
//! per *chunk*, not per limb.
//!
//! # Profiles
//!
//! All model constants live in a [`Profile`]:
//!
//! - [`Profile::default_seeded`] — measured defaults (seeded from
//!   `BENCH_ckks.json` runs), with `par_eff` taken from
//!   `available_parallelism()`. On a 1-CPU host this resolves to *serial
//!   everywhere*, which is exactly right.
//! - `ANAHEIM_PAR_PROFILE=<file>` — loads a calibrated profile emitted by
//!   `bench_json --tune-out` (see `scripts/bench.sh`), making the tuner
//!   bench-driven end to end.
//! - [`set_profile`] / [`reset_profile`] — runtime override, used by the
//!   calibration pass and by tests ([`Profile::serial`],
//!   [`Profile::max_parallel`] pin decisions independent of the host).
//!
//! # Determinism
//!
//! A decision only selects *how* work is scheduled, never what is computed:
//! chunked fan-out visits indices in serial order within disjoint chunks,
//! so results and op counts are bit-identical across thread counts and
//! profiles (`tests/parallel_equivalence.rs` sweeps both).

use std::sync::{Arc, OnceLock, RwLock};

/// The work classes the cost model distinguishes. Each class has its own
/// per-element cost; NTT-shaped work additionally scales with
/// `log2(elems)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Modular add/sub/mul/MAC passes over residues (one table lookup +
    /// one or two multiplies per element).
    Elementwise,
    /// Forward/inverse negacyclic NTT batches (`n log2 n` butterflies per
    /// limb) and NTT-dominated composites (ModUp digits, ModDown, rescale).
    Ntt,
    /// Basis-conversion accumulations (`u128` MAC per source×target limb
    /// product).
    BConv,
    /// Galois permutation-table gathers.
    Automorphism,
}

impl OpClass {
    /// All classes, in profile-file order.
    pub const ALL: [OpClass; 4] = [
        OpClass::Elementwise,
        OpClass::Ntt,
        OpClass::BConv,
        OpClass::Automorphism,
    ];

    /// The profile-file key stem for this class.
    pub fn key(self) -> &'static str {
        match self {
            OpClass::Elementwise => "elementwise",
            OpClass::Ntt => "ntt",
            OpClass::BConv => "bconv",
            OpClass::Automorphism => "automorphism",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Elementwise => 0,
            OpClass::Ntt => 1,
            OpClass::BConv => 2,
            OpClass::Automorphism => 3,
        }
    }

    /// Serial work units of one item: raw elements for element-wise
    /// classes, `elems · log2(elems)` for NTT-shaped work.
    fn unit_work(self, elems_per_item: usize) -> f64 {
        let e = elems_per_item as f64;
        match self {
            OpClass::Ntt => e * (e.max(2.0)).log2(),
            _ => e,
        }
    }
}

/// A fan-out decision: `jobs <= 1` means run the plain serial loop;
/// `jobs >= 2` means fuse the batch into `jobs` chunked pool tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Number of fused pool jobs to submit (1 = serial).
    pub jobs: usize,
}

impl Decision {
    /// Serial execution.
    pub const SERIAL: Decision = Decision { jobs: 1 };

    /// True when the batch should fan out to the pool.
    #[inline]
    pub fn parallel(self) -> bool {
        self.jobs >= 2
    }
}

/// All constants of the parallelism cost model. See the module docs for the
/// model itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Measured effective-parallelism ceiling of the host (a 2-thread spin
    /// calibration; ~1.0 on a contended or 1-CPU host). Caps the modeled
    /// speedup regardless of the requested thread count.
    pub par_eff: f64,
    /// Fixed cost of publishing one pool job batch (lock + wake), ns.
    pub dispatch_ns: f64,
    /// Marginal cost per fused chunk job (claim + join share), ns.
    pub job_ns: f64,
    /// Required modeled speedup before fanning out (safety margin against
    /// model error; 1.15 = demand a predicted 15 % win).
    pub min_gain: f64,
    /// Per-class serial cost per work unit, ns (indexed by the op class's
    /// position in [`OpClass::ALL`]).
    pub per_elem_ns: [f64; 4],
}

impl Profile {
    /// Measured defaults: per-class costs seeded from `BENCH_ckks.json`
    /// microbenchmarks, `par_eff` from the parallelism the OS reports.
    /// `bench_json --tune-out` replaces all of it with calibrated values.
    pub fn default_seeded() -> Self {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            par_eff: hw as f64,
            dispatch_ns: 10_000.0,
            job_ns: 2_000.0,
            min_gain: 1.15,
            // [elementwise, ntt, bconv, automorphism]
            per_elem_ns: [0.9, 5.5, 3.0, 0.5],
        }
    }

    /// A profile that forces every decision to serial (par_eff = 1).
    /// Used by tests and as the degenerate calibration result.
    pub fn serial() -> Self {
        Self {
            par_eff: 1.0,
            ..Self::default_seeded()
        }
    }

    /// A profile that fans out every batch of ≥ 2 items regardless of
    /// size: zero modeled overhead, unbounded parallelism. Only useful to
    /// exercise the parallel code paths deterministically in tests.
    pub fn max_parallel() -> Self {
        Self {
            par_eff: f64::INFINITY,
            dispatch_ns: 0.0,
            job_ns: 0.0,
            min_gain: 1.0,
            per_elem_ns: [1.0; 4],
        }
    }

    /// Parses the `key = value` profile format written by
    /// [`Profile::to_profile_string`] (and `bench_json --tune-out`).
    /// Unknown keys and malformed values are errors; missing keys keep
    /// their seeded defaults.
    pub fn from_profile_str(s: &str) -> Result<Self, String> {
        let mut p = Self::default_seeded();
        for (lineno, raw) in s.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad value for {key}: {e}", lineno + 1))?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "line {}: {key} must be finite and non-negative",
                    lineno + 1
                ));
            }
            match key {
                "par_eff" => p.par_eff = value.max(1.0),
                "dispatch_ns" => p.dispatch_ns = value,
                "job_ns" => p.job_ns = value,
                "min_gain" => p.min_gain = value.max(1.0),
                other => {
                    let class = OpClass::ALL
                        .iter()
                        .find(|c| other == format!("{}_per_elem_ns", c.key()))
                        .ok_or_else(|| format!("line {}: unknown key {other:?}", lineno + 1))?;
                    p.per_elem_ns[class.index()] = value;
                }
            }
        }
        Ok(p)
    }

    /// Serializes into the `key = value` format accepted by
    /// [`Profile::from_profile_str`] / `ANAHEIM_PAR_PROFILE`.
    pub fn to_profile_string(&self) -> String {
        let mut s = String::from("# anaheim parallelism tuning profile v1\n");
        s.push_str(&format!("par_eff = {:.3}\n", self.par_eff));
        s.push_str(&format!("dispatch_ns = {:.1}\n", self.dispatch_ns));
        s.push_str(&format!("job_ns = {:.1}\n", self.job_ns));
        s.push_str(&format!("min_gain = {:.3}\n", self.min_gain));
        for c in OpClass::ALL {
            s.push_str(&format!(
                "{}_per_elem_ns = {:.4}\n",
                c.key(),
                self.per_elem_ns[c.index()]
            ));
        }
        s
    }

    /// The modeled serial cost of a batch, ns.
    pub fn serial_ns(&self, class: OpClass, items: usize, elems_per_item: usize) -> f64 {
        items as f64 * class.unit_work(elems_per_item) * self.per_elem_ns[class.index()]
    }

    /// Applies the cost model for a batch of `items` tasks of
    /// `elems_per_item` residues each at the given thread count.
    pub fn decide_with_threads(
        &self,
        class: OpClass,
        items: usize,
        elems_per_item: usize,
        threads: usize,
    ) -> Decision {
        if threads <= 1 || items < 2 {
            return Decision::SERIAL;
        }
        let jobs = items.min(threads);
        let speedup_cap = (jobs as f64).min(self.par_eff);
        if speedup_cap <= 1.0 {
            return Decision::SERIAL;
        }
        let serial = self.serial_ns(class, items, elems_per_item);
        let parallel = serial / speedup_cap + self.dispatch_ns + jobs as f64 * self.job_ns;
        if serial > parallel * self.min_gain {
            Decision { jobs }
        } else {
            Decision::SERIAL
        }
    }
}

/// The process-wide active profile. Loaded once from `ANAHEIM_PAR_PROFILE`
/// (falling back to [`Profile::default_seeded`]); replaced by
/// [`set_profile`].
fn active() -> &'static RwLock<Arc<Profile>> {
    static ACTIVE: OnceLock<RwLock<Arc<Profile>>> = OnceLock::new();
    ACTIVE.get_or_init(|| RwLock::new(Arc::new(load_env_profile())))
}

fn load_env_profile() -> Profile {
    match std::env::var("ANAHEIM_PAR_PROFILE") {
        Ok(path) if !path.trim().is_empty() => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("ANAHEIM_PAR_PROFILE: cannot read {path:?}: {e}"));
            Profile::from_profile_str(&text)
                .unwrap_or_else(|e| panic!("ANAHEIM_PAR_PROFILE: {path:?}: {e}"))
        }
        _ => Profile::default_seeded(),
    }
}

/// The currently active tuning profile.
pub fn profile() -> Arc<Profile> {
    active().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Replaces the active profile at runtime (calibration passes, tests).
pub fn set_profile(p: Profile) {
    *active().write().unwrap_or_else(|e| e.into_inner()) = Arc::new(p);
}

/// Restores the environment-derived profile (undoes [`set_profile`]).
pub fn reset_profile() {
    set_profile(load_env_profile());
}

/// Decides serial vs. chunked-parallel for a batch of `items` tasks of
/// `elems_per_item` residues each, using the active profile and the current
/// `parpool` thread count. Inside a pool worker the decision is always
/// serial (the pool is single-job; nested sections degrade anyway).
pub fn decide(class: OpClass, items: usize, elems_per_item: usize) -> Decision {
    if parpool::is_worker() {
        return Decision::SERIAL;
    }
    profile().decide_with_threads(class, items, elems_per_item, parpool::num_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global profile or thread count.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn fixed_profile() -> Profile {
        // A host-independent profile for pinning decisions: 8-way effective
        // parallelism, 10 µs dispatch, 1 µs per job, 15 % margin, 1 ns/elem
        // everywhere (NTT work still carries its log2 n factor).
        Profile {
            par_eff: 8.0,
            dispatch_ns: 10_000.0,
            job_ns: 1_000.0,
            min_gain: 1.15,
            per_elem_ns: [1.0; 4],
        }
    }

    #[test]
    fn gate_decisions_at_boundary_shapes() {
        let p = fixed_profile();
        // Tiny batches never fan out, whatever the size of each item.
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 1, 1 << 16, 8),
            Decision::SERIAL
        );
        assert_eq!(
            p.decide_with_threads(OpClass::Elementwise, 0, 1 << 16, 8),
            Decision::SERIAL
        );
        // One thread never fans out, whatever the work.
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 64, 1 << 16, 1),
            Decision::SERIAL
        );
        // The paper's small-ring pain point: 5 limbs of n=1024 element-wise
        // work (~5 µs serial) must NOT fan out — overhead dominates.
        assert_eq!(
            p.decide_with_threads(OpClass::Elementwise, 5, 1024, 4),
            Decision::SERIAL
        );
        // The same shape as NTT work (~51 µs serial) is borderline: with a
        // 4-thread cap the model predicts 12.8+10+4 = 26.8 µs → 1.9x ≥ 1.15
        // margin ⇒ parallel, fused into 4 jobs.
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 5, 1024, 4),
            Decision { jobs: 4 }
        );
        // Deep limb counts at the paper's ring size always fan out, and the
        // chunking factor is the thread count, not the limb count.
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 24, 1 << 16, 8),
            Decision { jobs: 8 }
        );
        assert_eq!(
            p.decide_with_threads(OpClass::Elementwise, 24, 1 << 16, 8),
            Decision { jobs: 8 }
        );
        // Jobs never exceed the batch size.
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 2, 1 << 16, 8),
            Decision { jobs: 2 }
        );
    }

    #[test]
    fn ntt_gates_are_symmetric_in_batch_size() {
        // The old static gates keyed `intt_gate` on alpha and `ntt_gate` on
        // the level with the same minimum-n constant — asymmetric for the
        // same actual batch. The tuner keys on (batch, n) only: identical
        // shapes get identical decisions regardless of which phase asks.
        let p = fixed_profile();
        for &(batch, n) in &[
            (1usize, 4096usize),
            (2, 256),
            (2, 4096),
            (8, 1024),
            (3, 8192),
        ] {
            let forward = p.decide_with_threads(OpClass::Ntt, batch, n, 8);
            let inverse = p.decide_with_threads(OpClass::Ntt, batch, n, 8);
            assert_eq!(forward, inverse, "asymmetric gate at batch={batch} n={n}");
        }
        // Boundary pin: a 2-limb INTT batch at n=256 (the ModDown alpha=2
        // shape) stays serial; the same batch at n=8192 fans out.
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 2, 256, 8),
            Decision::SERIAL
        );
        assert_eq!(
            p.decide_with_threads(OpClass::Ntt, 2, 8192, 8),
            Decision { jobs: 2 }
        );
    }

    #[test]
    fn serial_and_max_parallel_profiles_pin_decisions() {
        let s = Profile::serial();
        assert_eq!(
            s.decide_with_threads(OpClass::Ntt, 64, 1 << 16, 8),
            Decision::SERIAL
        );
        let m = Profile::max_parallel();
        assert_eq!(
            m.decide_with_threads(OpClass::Elementwise, 2, 1, 8),
            Decision { jobs: 2 }
        );
        assert_eq!(
            m.decide_with_threads(OpClass::Elementwise, 1, 1 << 20, 8),
            Decision::SERIAL
        );
    }

    #[test]
    fn profile_roundtrips_through_text() {
        let mut p = fixed_profile();
        p.per_elem_ns = [0.25, 5.5, 3.125, 0.5];
        let text = p.to_profile_string();
        let q = Profile::from_profile_str(&text).expect("roundtrip parse");
        assert_eq!(p, q);
    }

    #[test]
    fn profile_parser_rejects_garbage() {
        assert!(Profile::from_profile_str("par_eff").is_err());
        assert!(Profile::from_profile_str("par_eff = banana").is_err());
        assert!(Profile::from_profile_str("warp_factor = 9").is_err());
        assert!(Profile::from_profile_str("dispatch_ns = -5").is_err());
        assert!(Profile::from_profile_str("job_ns = inf").is_err());
        // Comments, blanks, and partial profiles are fine.
        let p = Profile::from_profile_str("# hi\n\nntt_per_elem_ns = 7.5\n").expect("partial");
        assert_eq!(p.per_elem_ns[OpClass::Ntt.index()], 7.5);
        // par_eff and min_gain clamp to >= 1.
        let p = Profile::from_profile_str("par_eff = 0.2\nmin_gain = 0.5\n").expect("clamps");
        assert_eq!(p.par_eff, 1.0);
        assert_eq!(p.min_gain, 1.0);
    }

    #[test]
    fn set_profile_changes_live_decisions() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        parpool::set_threads(8);
        set_profile(Profile::serial());
        assert!(!decide(OpClass::Ntt, 64, 1 << 14).parallel());
        set_profile(Profile::max_parallel());
        assert!(decide(OpClass::Ntt, 64, 1 << 14).parallel());
        reset_profile();
        parpool::set_threads(0);
    }
}
