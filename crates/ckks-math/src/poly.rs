//! RNS polynomials in `R_Q = Z_Q[X]/(X^N + 1)`.
//!
//! A [`Poly`] is a list of *limbs*, one per RNS prime: limb `i` holds the
//! polynomial's coefficients reduced modulo `q_i` (§II-A of the paper). With
//! RNS, every polynomial op is limb-wise, which is exactly the property the
//! Anaheim PIM exploits: element-wise ops decompose into `L × N` independent
//! modular ops.
//!
//! The same independence makes limbs the natural unit of host-side
//! parallelism: every op here consults the [`tune`] cost model, which
//! decides per batch whether to run the plain serial loop or to fuse the
//! limbs into a handful of chunked [`parpool`] jobs (see
//! [`tune::decide`]). Chunks are disjoint and iterate in serial order, so
//! results are bit-identical for any thread count and any tuning profile.
//! Limb storage is recycled through the thread-local [`pool`] free-lists,
//! so steady-state evaluation does not allocate.

use std::sync::Arc;

use crate::modulus::Modulus;
use crate::ntt::NttContext;
use crate::pool;
use crate::tune::{self, OpClass};

/// Runs `f(i, &mut items[i])` for every item, fanning out into chunked
/// pool jobs when the [`tune`] cost model predicts a win for this op class
/// and shape. The closure sees disjoint elements and chunk-internal order
/// matches the serial loop, so parallel and serial runs produce identical
/// memory states.
pub(crate) fn for_each_tuned<T, F>(class: OpClass, elems_per_item: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let d = tune::decide(class, items.len(), elems_per_item);
    if d.parallel() {
        parpool::par_for_each_mut_chunked(items, d.jobs, f);
    } else {
        for (i, x) in items.iter_mut().enumerate() {
            f(i, x);
        }
    }
}

/// Maps `f(i, &items[i])` over every item in order, fanning out into
/// chunked pool jobs when the [`tune`] cost model predicts a win. Output
/// order always matches input order.
pub(crate) fn map_tuned<T, U, F>(class: OpClass, elems_per_item: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let d = tune::decide(class, items.len(), elems_per_item);
    if d.parallel() {
        parpool::par_map_chunked(items, d.jobs, f)
    } else {
        items.iter().enumerate().map(|(i, x)| f(i, x)).collect()
    }
}

/// Whether coefficients are stored in the coefficient (power basis) or
/// evaluation (NTT) domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Power-basis coefficients; required for BConv and rescaling.
    Coeff,
    /// NTT point values; required for polynomial multiplication.
    Eval,
}

/// One RNS limb: `n` residues modulo a single prime.
///
/// Limb storage comes from (and returns to) the thread-local buffer
/// [`pool`]: `Clone` copies into a recycled buffer and `Drop` hands the
/// buffer back instead of freeing it.
#[derive(Debug)]
pub struct Limb {
    ctx: Arc<NttContext>,
    data: Vec<u64>,
}

impl Clone for Limb {
    fn clone(&self) -> Self {
        let mut data = pool::take(self.data.len());
        data.copy_from_slice(&self.data);
        Self {
            ctx: Arc::clone(&self.ctx),
            data,
        }
    }
}

impl Drop for Limb {
    fn drop(&mut self) {
        pool::give(std::mem::take(&mut self.data));
    }
}

impl Limb {
    /// Creates a zero limb for the given prime context.
    pub fn zero(ctx: Arc<NttContext>) -> Self {
        let n = ctx.n();
        Self {
            ctx,
            data: pool::take_zeroed(n),
        }
    }

    /// Creates a limb from raw residues (must already be reduced).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != ctx.n()` or any value is out of range.
    pub fn from_data(ctx: Arc<NttContext>, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), ctx.n(), "limb length mismatch");
        debug_assert!(data.iter().all(|&x| x < ctx.modulus().value()));
        Self { ctx, data }
    }

    /// Creates a limb by copying residues into a pooled buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != ctx.n()`.
    pub fn from_slice(ctx: Arc<NttContext>, data: &[u64]) -> Self {
        assert_eq!(data.len(), ctx.n(), "limb length mismatch");
        debug_assert!(data.iter().all(|&x| x < ctx.modulus().value()));
        let mut buf = pool::take(data.len());
        buf.copy_from_slice(data);
        Self { ctx, data: buf }
    }

    /// The prime context of this limb.
    #[inline]
    pub fn ctx(&self) -> &Arc<NttContext> {
        &self.ctx
    }

    /// Residues as a slice.
    #[inline]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Residues as a mutable slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }
}

/// An RNS polynomial: `L` limbs of `N` residues, plus a domain tag.
///
/// # Example
///
/// ```
/// use ckks_math::{Modulus, NttContext, Poly, Format};
/// use ckks_math::prime::generate_ntt_primes;
/// use std::sync::Arc;
///
/// let n = 64;
/// let basis: Vec<_> = generate_ntt_primes(40, 2, 2 * n as u64)
///     .into_iter()
///     .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
///     .collect();
/// let mut a = Poly::from_coeff_i64(&basis, &vec![1i64; n]);
/// let b = a.clone();
/// a.add_assign(&b);
/// assert_eq!(a.limb(0).data()[0], 2);
/// ```
#[derive(Debug, Clone)]
pub struct Poly {
    format: Format,
    limbs: Vec<Limb>,
}

impl Poly {
    /// Creates the zero polynomial over `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is empty or the contexts disagree on `n`.
    pub fn zero(basis: &[Arc<NttContext>], format: Format) -> Self {
        assert!(!basis.is_empty(), "empty RNS basis");
        let n = basis[0].n();
        assert!(basis.iter().all(|c| c.n() == n), "mixed ring degrees");
        Self {
            format,
            limbs: basis.iter().map(|c| Limb::zero(c.clone())).collect(),
        }
    }

    /// Builds a coefficient-domain polynomial from signed coefficients,
    /// reducing each into every limb.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn from_coeff_i64(basis: &[Arc<NttContext>], coeffs: &[i64]) -> Self {
        let mut p = Self::zero(basis, Format::Coeff);
        assert_eq!(coeffs.len(), p.n(), "coefficient count mismatch");
        let n = p.n();
        for_each_tuned(OpClass::Elementwise, n, &mut p.limbs, |_, limb| {
            let m = *limb.ctx.modulus();
            for (dst, &c) in limb.data.iter_mut().zip(coeffs) {
                *dst = m.from_i64(c);
            }
        });
        p
    }

    /// Assembles a polynomial from explicit limbs.
    ///
    /// # Panics
    ///
    /// Panics if `limbs` is empty or limb lengths disagree.
    pub fn from_limbs(limbs: Vec<Limb>, format: Format) -> Self {
        assert!(!limbs.is_empty(), "empty limb list");
        let n = limbs[0].data.len();
        assert!(limbs.iter().all(|l| l.data.len() == n), "ragged limbs");
        Self { format, limbs }
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.limbs[0].data.len()
    }

    /// Number of RNS limbs `L`.
    #[inline]
    pub fn num_limbs(&self) -> usize {
        self.limbs.len()
    }

    /// Current domain.
    #[inline]
    pub fn format(&self) -> Format {
        self.format
    }

    /// Limb accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn limb(&self, i: usize) -> &Limb {
        &self.limbs[i]
    }

    /// Mutable limb accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut Limb {
        &mut self.limbs[i]
    }

    /// Iterates over limbs.
    pub fn limbs(&self) -> impl Iterator<Item = &Limb> {
        self.limbs.iter()
    }

    /// All limbs as a mutable slice (for callers that update limbs in
    /// parallel, e.g. rescaling).
    #[inline]
    pub fn limbs_mut(&mut self) -> &mut [Limb] {
        &mut self.limbs
    }

    /// The RNS basis (prime contexts) of this polynomial.
    pub fn basis(&self) -> Vec<Arc<NttContext>> {
        self.limbs.iter().map(|l| l.ctx.clone()).collect()
    }

    fn assert_compatible(&self, other: &Poly) {
        assert_eq!(self.format, other.format, "domain mismatch");
        assert_eq!(self.num_limbs(), other.num_limbs(), "limb count mismatch");
        for (a, b) in self.limbs.iter().zip(&other.limbs) {
            assert_eq!(
                a.ctx.modulus().value(),
                b.ctx.modulus().value(),
                "modulus mismatch"
            );
        }
    }

    /// Out-of-place binary element-wise op into pooled limbs.
    fn zip_map(&self, other: &Poly, f: impl Fn(&Modulus, u64, u64) -> u64 + Sync) -> Poly {
        let limbs = map_tuned(OpClass::Elementwise, self.n(), &self.limbs, |i, a| {
            let m = *a.ctx.modulus();
            let mut data = pool::take(a.data.len());
            for ((d, &x), &y) in data.iter_mut().zip(&a.data).zip(&other.limbs[i].data) {
                *d = f(&m, x, y);
            }
            Limb {
                ctx: Arc::clone(&a.ctx),
                data,
            }
        });
        Poly {
            format: self.format,
            limbs,
        }
    }

    /// Out-of-place unary element-wise op into pooled limbs.
    fn map_unary(&self, f: impl Fn(&Modulus, u64) -> u64 + Sync) -> Poly {
        let limbs = map_tuned(OpClass::Elementwise, self.n(), &self.limbs, |_, a| {
            let m = *a.ctx.modulus();
            let mut data = pool::take(a.data.len());
            for (d, &x) in data.iter_mut().zip(&a.data) {
                *d = f(&m, x);
            }
            Limb {
                ctx: Arc::clone(&a.ctx),
                data,
            }
        });
        Poly {
            format: self.format,
            limbs,
        }
    }

    /// `self + other` into pooled storage (no intermediate clone).
    ///
    /// # Panics
    ///
    /// Panics if domains, limb counts, or moduli differ.
    pub fn added(&self, other: &Poly) -> Poly {
        self.assert_compatible(other);
        self.zip_map(other, |m, x, y| m.add(x, y))
    }

    /// `self - other` into pooled storage.
    ///
    /// # Panics
    ///
    /// Panics if domains, limb counts, or moduli differ.
    pub fn subbed(&self, other: &Poly) -> Poly {
        self.assert_compatible(other);
        self.zip_map(other, |m, x, y| m.sub(x, y))
    }

    /// `-self` into pooled storage.
    pub fn negated(&self) -> Poly {
        self.map_unary(|m, x| m.neg(x))
    }

    /// Hadamard product `self * other` into pooled storage (evaluation
    /// domain only).
    ///
    /// # Panics
    ///
    /// Panics if either operand is in the coefficient domain, or on basis
    /// mismatch.
    pub fn multiplied(&self, other: &Poly) -> Poly {
        assert_eq!(self.format, Format::Eval, "multiplication requires Eval");
        self.assert_compatible(other);
        self.zip_map(other, |m, x, y| m.mul(x, y))
    }

    /// `self * s` into pooled storage.
    pub fn scaled_i64(&self, s: i64) -> Poly {
        let limbs = map_tuned(OpClass::Elementwise, self.n(), &self.limbs, |_, a| {
            let m = *a.ctx.modulus();
            let sv = m.from_i64(s);
            let ss = m.shoup(sv);
            let mut data = pool::take(a.data.len());
            for (d, &x) in data.iter_mut().zip(&a.data) {
                *d = m.mul_shoup(x, sv, ss);
            }
            Limb {
                ctx: Arc::clone(&a.ctx),
                data,
            }
        });
        Poly {
            format: self.format,
            limbs,
        }
    }

    /// Deep copy into pooled storage. Semantically identical to `Clone`,
    /// but named so call sites in allocation-free paths are greppable.
    pub fn duplicate(&self) -> Poly {
        self.map_unary(|_, x| x)
    }

    /// `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if domains, limb counts, or moduli differ.
    pub fn add_assign(&mut self, other: &Poly) {
        self.assert_compatible(other);
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |i, a| {
            let m = *a.ctx.modulus();
            for (x, &y) in a.data.iter_mut().zip(&other.limbs[i].data) {
                *x = m.add(*x, y);
            }
        });
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if domains, limb counts, or moduli differ.
    pub fn sub_assign(&mut self, other: &Poly) {
        self.assert_compatible(other);
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |i, a| {
            let m = *a.ctx.modulus();
            for (x, &y) in a.data.iter_mut().zip(&other.limbs[i].data) {
                *x = m.sub(*x, y);
            }
        });
    }

    /// `self = -self`.
    pub fn neg_assign(&mut self) {
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |_, a| {
            let m = *a.ctx.modulus();
            for x in &mut a.data {
                *x = m.neg(*x);
            }
        });
    }

    /// Element-wise (Hadamard) product, i.e. ring multiplication when both
    /// operands are in the evaluation domain.
    ///
    /// # Panics
    ///
    /// Panics if either operand is in the coefficient domain, or on
    /// basis mismatch.
    pub fn mul_assign(&mut self, other: &Poly) {
        assert_eq!(self.format, Format::Eval, "multiplication requires Eval");
        self.assert_compatible(other);
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |i, a| {
            let m = *a.ctx.modulus();
            for (x, &y) in a.data.iter_mut().zip(&other.limbs[i].data) {
                *x = m.mul(*x, y);
            }
        });
    }

    /// Fused multiply-accumulate `self += a * b` (evaluation domain).
    ///
    /// # Panics
    ///
    /// Panics if any operand is in the coefficient domain or bases differ.
    pub fn mac_assign(&mut self, a: &Poly, b: &Poly) {
        assert_eq!(self.format, Format::Eval, "MAC requires Eval");
        self.assert_compatible(a);
        a.assert_compatible(b);
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |i, dst| {
            let m = *dst.ctx.modulus();
            for ((d, &u), &v) in dst
                .data
                .iter_mut()
                .zip(&a.limbs[i].data)
                .zip(&b.limbs[i].data)
            {
                *d = m.reduce_u128(u as u128 * v as u128 + *d as u128);
            }
        });
    }

    /// Multiplies each limb by a per-limb scalar (already reduced).
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len() != num_limbs()`.
    pub fn mul_scalar_per_limb(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.num_limbs(), "scalar count mismatch");
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |i, a| {
            let m = *a.ctx.modulus();
            let s = m.reduce(scalars[i]);
            let ss = m.shoup(s);
            for x in &mut a.data {
                *x = m.mul_shoup(*x, s, ss);
            }
        });
    }

    /// Multiplies the whole polynomial by a signed integer scalar.
    pub fn mul_scalar_i64(&mut self, s: i64) {
        let n = self.n();
        for_each_tuned(OpClass::Elementwise, n, &mut self.limbs, |_, a| {
            let m = *a.ctx.modulus();
            let sv = m.from_i64(s);
            let ss = m.shoup(sv);
            for x in &mut a.data {
                *x = m.mul_shoup(*x, sv, ss);
            }
        });
    }

    /// Applies the Galois automorphism `X ↦ X^g`, in whichever domain the
    /// polynomial currently is. Uses the memoized permutation tables in
    /// [`NttContext`] and pooled output limbs.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even.
    pub fn automorphism(&self, g: u64) -> Poly {
        let fmt = self.format;
        let limbs = map_tuned(OpClass::Automorphism, self.n(), &self.limbs, |_, l| {
            let mut data = pool::take(l.data.len());
            match fmt {
                Format::Coeff => l.ctx.galois_coeff_into(&l.data, g, &mut data),
                Format::Eval => l.ctx.galois_eval_into(&l.data, g, &mut data),
            }
            Limb {
                ctx: Arc::clone(&l.ctx),
                data,
            }
        });
        Poly { format: fmt, limbs }
    }

    /// Converts to the evaluation domain in place (no-op if already there).
    pub fn to_eval(&mut self) {
        if self.format == Format::Eval {
            return;
        }
        let n = self.n();
        for_each_tuned(OpClass::Ntt, n, &mut self.limbs, |_, l| {
            let ctx = Arc::clone(&l.ctx);
            ctx.forward(&mut l.data);
        });
        self.format = Format::Eval;
    }

    /// Converts to the coefficient domain in place (no-op if already there).
    pub fn to_coeff(&mut self) {
        if self.format == Format::Coeff {
            return;
        }
        let n = self.n();
        for_each_tuned(OpClass::Ntt, n, &mut self.limbs, |_, l| {
            let ctx = Arc::clone(&l.ctx);
            ctx.inverse(&mut l.data);
        });
        self.format = Format::Coeff;
    }

    /// Removes and returns the last limb (used by rescaling / ModDown).
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn pop_limb(&mut self) -> Limb {
        assert!(self.num_limbs() > 1, "cannot drop the last remaining limb");
        self.limbs.pop().expect("non-empty")
    }

    /// Truncates to the first `k` limbs.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > num_limbs()`.
    pub fn truncate_limbs(&mut self, k: usize) {
        assert!(k >= 1 && k <= self.num_limbs(), "invalid limb count");
        self.limbs.truncate(k);
    }

    /// Appends limbs (used when extending to the PQ basis).
    pub fn extend_limbs(&mut self, limbs: Vec<Limb>) {
        let n = self.n();
        assert!(limbs.iter().all(|l| l.data.len() == n), "ragged limbs");
        self.limbs.extend(limbs);
    }

    /// Splits off limbs starting at index `at`, returning the tail.
    ///
    /// # Panics
    ///
    /// Panics if `at == 0` or `at > num_limbs()`.
    pub fn split_off_limbs(&mut self, at: usize) -> Vec<Limb> {
        assert!(at >= 1 && at <= self.num_limbs(), "invalid split point");
        self.limbs.split_off(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::Modulus;
    use crate::prime::generate_ntt_primes;

    fn basis(n: usize, l: usize) -> Vec<Arc<NttContext>> {
        generate_ntt_primes(45, l, 2 * n as u64)
            .into_iter()
            .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
            .collect()
    }

    #[test]
    fn add_sub_neg() {
        let b = basis(32, 3);
        let coeffs: Vec<i64> = (0..32).map(|i| i - 16).collect();
        let a = Poly::from_coeff_i64(&b, &coeffs);
        let mut s = a.clone();
        s.add_assign(&a);
        s.sub_assign(&a);
        for (la, ls) in a.limbs().zip(s.limbs()) {
            assert_eq!(la.data(), ls.data());
        }
        let mut neg = a.clone();
        neg.neg_assign();
        neg.add_assign(&a);
        assert!(neg.limbs().all(|l| l.data().iter().all(|&x| x == 0)));
    }

    #[test]
    fn out_of_place_ops_match_assign_variants() {
        let n = 32;
        let b = basis(n, 3);
        let coeffs: Vec<i64> = (0..n as i64).map(|i| i * 7 - 11).collect();
        let other: Vec<i64> = (0..n as i64).map(|i| 3 - i).collect();
        let x = Poly::from_coeff_i64(&b, &coeffs);
        let y = Poly::from_coeff_i64(&b, &other);

        let mut want = x.clone();
        want.add_assign(&y);
        let got = x.added(&y);
        for (l, w) in got.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }

        let mut want = x.clone();
        want.sub_assign(&y);
        let got = x.subbed(&y);
        for (l, w) in got.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }

        let mut want = x.clone();
        want.neg_assign();
        let got = x.negated();
        for (l, w) in got.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }

        let mut want = x.clone();
        want.mul_scalar_i64(-9);
        let got = x.scaled_i64(-9);
        for (l, w) in got.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }

        let mut xe = x.clone();
        let mut ye = y.clone();
        xe.to_eval();
        ye.to_eval();
        let mut want = xe.clone();
        want.mul_assign(&ye);
        let got = xe.multiplied(&ye);
        assert_eq!(got.format(), Format::Eval);
        for (l, w) in got.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }

        let dup = x.duplicate();
        for (l, w) in dup.limbs().zip(x.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn pooled_limb_roundtrip() {
        pool::clear();
        let b = basis(16, 2);
        let coeffs: Vec<i64> = (0..16).collect();
        {
            let a = Poly::from_coeff_i64(&b, &coeffs);
            let _copy = a.duplicate();
        }
        // Both polynomials dropped: their limb buffers must now be pooled.
        assert!(pool::pooled_buffers() >= 4);
        let a = Poly::from_coeff_i64(&b, &coeffs);
        let want = Poly::from_coeff_i64(&b, &coeffs);
        for (l, w) in a.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn eval_mul_equals_ring_mul() {
        let n = 16;
        let b = basis(n, 2);
        // a = X + 2, c = X - 1  =>  a*c = X^2 + X - 2
        let mut ac = vec![0i64; n];
        ac[0] = 2;
        ac[1] = 1;
        let mut cc = vec![0i64; n];
        cc[0] = -1;
        cc[1] = 1;
        let mut a = Poly::from_coeff_i64(&b, &ac);
        let mut c = Poly::from_coeff_i64(&b, &cc);
        a.to_eval();
        c.to_eval();
        a.mul_assign(&c);
        a.to_coeff();
        let mut want = vec![0i64; n];
        want[0] = -2;
        want[1] = 1;
        want[2] = 1;
        let expect = Poly::from_coeff_i64(&b, &want);
        for (la, le) in a.limbs().zip(expect.limbs()) {
            assert_eq!(la.data(), le.data());
        }
    }

    #[test]
    fn mac_matches_mul_then_add() {
        let n = 16;
        let b = basis(n, 2);
        let mut x = Poly::from_coeff_i64(&b, &vec![3i64; n]);
        let mut y = Poly::from_coeff_i64(&b, &vec![5i64; n]);
        x.to_eval();
        y.to_eval();
        let mut acc = Poly::zero(&b, Format::Eval);
        acc.mac_assign(&x, &y);
        let mut want = x.clone();
        want.mul_assign(&y);
        for (l, w) in acc.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn scalar_mul() {
        let n = 8;
        let b = basis(n, 2);
        let mut a = Poly::from_coeff_i64(&b, &vec![1i64; n]);
        a.mul_scalar_i64(-3);
        let want = Poly::from_coeff_i64(&b, &vec![-3i64; n]);
        for (l, w) in a.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn automorphism_consistent_across_domains() {
        let n = 32;
        let b = basis(n, 2);
        let coeffs: Vec<i64> = (0..n as i64).collect();
        let a = Poly::from_coeff_i64(&b, &coeffs);
        let g = 5u64;
        // coeff-domain automorphism, then NTT
        let mut via_coeff = a.automorphism(g);
        via_coeff.to_eval();
        // NTT, then eval-domain automorphism
        let mut ae = a.clone();
        ae.to_eval();
        let via_eval = ae.automorphism(g);
        for (l, w) in via_eval.limbs().zip(via_coeff.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn parallel_ops_match_serial() {
        // Large enough to clear both fan-out gates, exercised at several
        // thread counts; results must be bit-identical.
        let n = 1 << 10;
        let b = basis(n, 8);
        let coeffs: Vec<i64> = (0..n as i64).map(|i| (i * 31 + 7) % 997 - 498).collect();
        let other: Vec<i64> = (0..n as i64).map(|i| (i * 17 + 3) % 991 - 495).collect();

        let reference = {
            parpool::set_threads(1);
            run_shape(&b, &coeffs, &other)
        };
        for t in [2usize, 8] {
            parpool::set_threads(t);
            let got = run_shape(&b, &coeffs, &other);
            assert_eq!(got, reference, "thread count {t} diverged");
        }
        parpool::set_threads(0);
    }

    fn run_shape(b: &[Arc<NttContext>], coeffs: &[i64], other: &[i64]) -> Vec<Vec<u64>> {
        let mut x = Poly::from_coeff_i64(b, coeffs);
        let y = Poly::from_coeff_i64(b, other);
        x.add_assign(&y);
        let mut s = x.subbed(&y);
        s.to_eval();
        let mut ye = y.clone();
        ye.to_eval();
        s.mul_assign(&ye);
        s.mac_assign(&ye, &ye);
        let rot = s.automorphism(5);
        let mut out = rot.added(&s);
        out.to_coeff();
        out.limbs().map(|l| l.data().to_vec()).collect()
    }

    #[test]
    fn limb_management() {
        let b = basis(8, 4);
        let mut a = Poly::zero(&b, Format::Coeff);
        assert_eq!(a.num_limbs(), 4);
        let tail = a.split_off_limbs(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(a.num_limbs(), 2);
        a.extend_limbs(tail);
        assert_eq!(a.num_limbs(), 4);
        a.pop_limb();
        a.truncate_limbs(1);
        assert_eq!(a.num_limbs(), 1);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn mixed_domain_add_panics() {
        let b = basis(8, 1);
        let mut a = Poly::zero(&b, Format::Coeff);
        let c = Poly::zero(&b, Format::Eval);
        a.add_assign(&c);
    }

    #[test]
    #[should_panic(expected = "multiplication requires Eval")]
    fn coeff_mul_panics() {
        let b = basis(8, 1);
        let mut a = Poly::zero(&b, Format::Coeff);
        let c = Poly::zero(&b, Format::Coeff);
        a.mul_assign(&c);
    }
}
