//! Negacyclic number-theoretic transform (NTT) over `Z_q[X]/(X^N + 1)`.
//!
//! The forward transform uses Cooley–Tukey butterflies with twiddle factors
//! stored in bit-reversed order (the classic Harvey/SEAL layout); the inverse
//! replays the forward stages backwards with inverted twiddles, so the pair
//! is an exact inverse by construction. All twiddle multiplications use
//! Shoup's precomputed-quotient trick to avoid 128-bit division in the hot
//! loop.
//!
//! Besides the transforms, the context exposes the *evaluation-domain Galois
//! permutation* used by HROT: applying the automorphism `X ↦ X^g` in the
//! evaluation domain is a pure slot permutation, which this module derives
//! from first principles (by transforming the monomial `X` and reading off
//! which power of ψ each output slot evaluates at).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::modulus::Modulus;

/// Per-prime NTT context: twiddle tables and Galois permutation support for a
/// fixed ring degree `n` (a power of two) and prime `q ≡ 1 (mod 2n)`.
///
/// # Example
///
/// ```
/// use ckks_math::{Modulus, NttContext};
/// use ckks_math::prime::generate_ntt_primes;
///
/// let n = 64;
/// let q = generate_ntt_primes(40, 1, 2 * n as u64)[0];
/// let ctx = NttContext::new(n as usize, Modulus::new(q));
/// let mut a = vec![1u64; n as usize];
/// let orig = a.clone();
/// ctx.forward(&mut a);
/// ctx.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug)]
pub struct NttContext {
    n: usize,
    log_n: u32,
    modulus: Modulus,
    psi: u64,
    /// `root_powers[i] = ψ^{bitrev(i)}` for `i ∈ [1, n)`, CT layout.
    root_powers: Vec<u64>,
    root_powers_shoup: Vec<u64>,
    /// Inverses of `root_powers`, same indexing.
    inv_root_powers: Vec<u64>,
    inv_root_powers_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
    /// Lazily derived: exponent `e_j` such that output slot `j` of the
    /// forward transform holds `a(ψ^{e_j})`, plus the inverse map.
    galois: OnceLock<GaloisTables>,
    /// Memoized per-element permutation tables (HROT applies the same few
    /// Galois elements thousands of times; rebuilding the `Vec<u32>` per
    /// rotation was a measurable hot-path allocation).
    galois_perms: RwLock<HashMap<u64, Arc<GaloisPerm>>>,
}

#[derive(Debug)]
struct GaloisTables {
    /// `exponent[j]` = the (odd) power of ψ evaluated at output slot `j`.
    exponent: Vec<u32>,
    /// `slot_of[e]` = the output slot evaluating ψ^e (only odd `e` occur).
    slot_of: Vec<u32>,
}

/// Precomputed application tables for one Galois element `g`, covering both
/// domains. Built once per `(context, g)` and shared via [`Arc`].
#[derive(Debug)]
struct GaloisPerm {
    /// Evaluation domain: `out[j] = in[eval_src[j]]`.
    eval_src: Vec<u32>,
    /// Coefficient domain: source `i` lands at `coeff_dst[i]`…
    coeff_dst: Vec<u32>,
    /// …negated when the monomial wrapped past `X^n` (`X^n = -1`).
    coeff_neg: Vec<bool>,
}

impl NttContext {
    /// Builds the context, finding a primitive `2n`-th root of unity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 4, or if `q ≢ 1 (mod 2n)`.
    pub fn new(n: usize, modulus: Modulus) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "n must be a power of two >= 4"
        );
        let q = modulus.value();
        assert!(
            (q - 1).is_multiple_of(2 * n as u64),
            "modulus must be 1 mod 2n for the negacyclic NTT"
        );
        let psi = find_primitive_2n_root(&modulus, n as u64);
        let log_n = n.trailing_zeros();

        let mut root_powers = vec![0u64; n];
        root_powers[0] = 1;
        // root_powers[i] = psi^{bitrev_{log_n}(i)}
        let mut psi_pows = vec![0u64; n];
        psi_pows[0] = 1;
        for i in 1..n {
            psi_pows[i] = modulus.mul(psi_pows[i - 1], psi);
        }
        for i in 1..n {
            root_powers[i] = psi_pows[bitrev(i as u32, log_n) as usize];
        }
        let inv_root_powers: Vec<u64> = root_powers.iter().map(|&w| modulus.inv(w)).collect();
        let root_powers_shoup = root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let inv_root_powers_shoup = inv_root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let n_inv = modulus.inv(n as u64);
        let n_inv_shoup = modulus.shoup(n_inv);
        Self {
            n,
            log_n,
            modulus,
            psi,
            root_powers,
            root_powers_shoup,
            inv_root_powers,
            inv_root_powers_shoup,
            n_inv,
            n_inv_shoup,
            galois: OnceLock::new(),
            galois_perms: RwLock::new(HashMap::new()),
        }
    }

    /// The ring degree `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The prime modulus.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The primitive `2n`-th root of unity in use.
    #[inline]
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// In-place forward negacyclic NTT.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let m = &self.modulus;
        let mut t = self.n;
        let mut stage = 1usize;
        while stage < self.n {
            t >>= 1;
            for i in 0..stage {
                let w = self.root_powers[stage + i];
                let ws = self.root_powers_shoup[stage + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = m.mul_shoup(a[j + t], w, ws);
                    a[j] = m.add(u, v);
                    a[j + t] = m.sub(u, v);
                }
            }
            stage <<= 1;
        }
    }

    /// In-place inverse negacyclic NTT (exact inverse of [`Self::forward`]).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        let m = &self.modulus;
        let mut t = 1usize;
        let mut stage = self.n >> 1;
        while stage >= 1 {
            for i in 0..stage {
                let w = self.inv_root_powers[stage + i];
                let ws = self.inv_root_powers_shoup[stage + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = m.add(u, v);
                    a[j + t] = m.mul_shoup(m.sub(u, v), w, ws);
                }
            }
            t <<= 1;
            stage >>= 1;
        }
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, self.n_inv, self.n_inv_shoup);
        }
    }

    fn galois_tables(&self) -> &GaloisTables {
        self.galois.get_or_init(|| {
            // Transform the monomial X: output slot j then holds ψ^{e_j}.
            let mut x = vec![0u64; self.n];
            x[1] = 1;
            self.forward(&mut x);
            // Map each ψ power value back to its exponent.
            let mut value_to_exp = HashMap::with_capacity(2 * self.n);
            let mut p = 1u64;
            for e in 0..(2 * self.n as u32) {
                value_to_exp.insert(p, e);
                p = self.modulus.mul(p, self.psi);
            }
            let mut exponent = vec![0u32; self.n];
            let mut slot_of = vec![u32::MAX; 2 * self.n];
            for (j, v) in x.iter().enumerate() {
                let e = *value_to_exp
                    .get(v)
                    .expect("NTT output of X must be a power of psi");
                exponent[j] = e;
                slot_of[e as usize] = j as u32;
            }
            GaloisTables { exponent, slot_of }
        })
    }

    /// The memoized application tables for `g` (normalized mod `2n`).
    ///
    /// # Panics
    ///
    /// Panics if `g` is even (such maps are not ring automorphisms here).
    fn galois_perm(&self, g: u64) -> Arc<GaloisPerm> {
        assert!(g % 2 == 1, "galois element must be odd");
        let two_n = 2 * self.n as u64;
        let g = g % two_n;
        if let Some(perm) = self.galois_perms.read().expect("galois cache").get(&g) {
            return perm.clone();
        }
        // Build outside the write lock; a racing builder just wins the
        // insert and both end up sharing one Arc.
        let tables = self.galois_tables();
        let eval_src = (0..self.n)
            .map(|j| {
                let e = tables.exponent[j] as u64;
                let src_e = (e * g) % two_n;
                tables.slot_of[src_e as usize]
            })
            .collect();
        let mut coeff_dst = vec![0u32; self.n];
        let mut coeff_neg = vec![false; self.n];
        for i in 0..self.n {
            let e = (i as u64 * g) % two_n;
            if e < self.n as u64 {
                coeff_dst[i] = e as u32;
            } else {
                coeff_dst[i] = (e - self.n as u64) as u32;
                coeff_neg[i] = true;
            }
        }
        let built = Arc::new(GaloisPerm {
            eval_src,
            coeff_dst,
            coeff_neg,
        });
        let mut cache = self.galois_perms.write().expect("galois cache");
        cache.entry(g).or_insert(built).clone()
    }

    /// Returns the evaluation-domain permutation for the automorphism
    /// `X ↦ X^g` (`g` odd): `out[j] = in[perm[j]]`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is even (such maps are not ring automorphisms here).
    pub fn galois_permutation(&self, g: u64) -> Vec<u32> {
        self.galois_perm(g).eval_src.clone()
    }

    /// Applies the automorphism `X ↦ X^g` to a coefficient-domain vector.
    ///
    /// Coefficient `i` moves to position `i*g mod 2n`, negated when the
    /// destination wraps past `n` (since `X^n = -1`).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` or `g` is even.
    pub fn galois_coeff(&self, a: &[u64], g: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.n];
        self.galois_coeff_into(a, g, &mut out);
        out
    }

    /// [`Self::galois_coeff`] writing into a caller-provided buffer (every
    /// position of `out` is overwritten; the map is a bijection).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`, `out.len() != n`, or `g` is even.
    pub fn galois_coeff_into(&self, a: &[u64], g: u64, out: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let perm = self.galois_perm(g);
        for (i, &c) in a.iter().enumerate() {
            let dst = perm.coeff_dst[i] as usize;
            out[dst] = if perm.coeff_neg[i] {
                self.modulus.neg(c)
            } else {
                c
            };
        }
    }

    /// Applies the automorphism `X ↦ X^g` in the evaluation domain via the
    /// slot permutation from [`Self::galois_permutation`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n` or `g` is even.
    pub fn galois_eval(&self, a: &[u64], g: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.n];
        self.galois_eval_into(a, g, &mut out);
        out
    }

    /// [`Self::galois_eval`] writing into a caller-provided buffer (every
    /// position of `out` is overwritten).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`, `out.len() != n`, or `g` is even.
    pub fn galois_eval_into(&self, a: &[u64], g: u64, out: &mut [u64]) {
        assert_eq!(a.len(), self.n, "length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        let perm = self.galois_perm(g);
        for (dst, &src) in out.iter_mut().zip(&perm.eval_src) {
            *dst = a[src as usize];
        }
    }

    /// log2 of the ring degree.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }
}

/// Bit-reverses the low `bits` bits of `x`.
#[inline]
pub fn bitrev(x: u32, bits: u32) -> u32 {
    if bits == 0 {
        0
    } else {
        x.reverse_bits() >> (32 - bits)
    }
}

fn find_primitive_2n_root(m: &Modulus, n: u64) -> u64 {
    let q = m.value();
    let exp = (q - 1) / (2 * n);
    // Deterministic scan: psi = c^exp has order dividing 2n; order is exactly
    // 2n iff psi^n = -1.
    for c in 2..q {
        let psi = m.pow(c, exp);
        if m.pow(psi, n) == q - 1 {
            return psi;
        }
    }
    unreachable!("a primitive root always exists for prime q ≡ 1 mod 2n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::generate_ntt_primes;

    fn ctx(n: usize, bits: u32) -> NttContext {
        let q = generate_ntt_primes(bits, 1, 2 * n as u64)[0];
        NttContext::new(n, Modulus::new(q))
    }

    fn negacyclic_convolution(ctx: &NttContext, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = ctx.n();
        let m = ctx.modulus();
        let mut out = vec![0u64; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let p = m.mul(ai, bj);
                let k = i + j;
                if k < n {
                    out[k] = m.add(out[k], p);
                } else {
                    out[k - n] = m.sub(out[k - n], p);
                }
            }
        }
        out
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [8usize, 64, 256] {
            let ctx = ctx(n, 50);
            let mut a: Vec<u64> = (0..n as u64).map(|i| i * 7 + 3).collect();
            let orig = a.clone();
            ctx.forward(&mut a);
            assert_ne!(a, orig, "transform must change the data");
            ctx.inverse(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn pointwise_mul_is_negacyclic_convolution() {
        let n = 32;
        let ctx = ctx(n, 40);
        let m = ctx.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| (i * i + 1) % m.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % m.value()).collect();
        let want = negacyclic_convolution(&ctx, &a, &b);

        let mut fa = a.clone();
        let mut fb = b.clone();
        ctx.forward(&mut fa);
        ctx.forward(&mut fb);
        let mut fc: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| m.mul(x, y)).collect();
        ctx.inverse(&mut fc);
        assert_eq!(fc, want);
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // Multiplying X^(n-1) by X must produce -1 (negacyclic wrap).
        let n = 16;
        let ctx = ctx(n, 40);
        let m = ctx.modulus();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        ctx.forward(&mut a);
        ctx.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.mul(x, y)).collect();
        ctx.inverse(&mut c);
        assert_eq!(c[0], m.value() - 1);
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn galois_eval_matches_coeff_path() {
        let n = 64;
        let ctx = ctx(n, 40);
        let a: Vec<u64> = (0..n as u64).map(|i| i * 13 + 1).collect();
        for g in [3u64, 5, 2 * n as u64 - 1, 9, 65] {
            // Reference: coefficient-domain automorphism then NTT.
            let mut want = ctx.galois_coeff(&a, g);
            ctx.forward(&mut want);
            // Eval-domain permutation path.
            let mut fa = a.clone();
            ctx.forward(&mut fa);
            let got = ctx.galois_eval(&fa, g);
            assert_eq!(got, want, "galois element {g}");
        }
    }

    #[test]
    fn galois_composition() {
        // φ_g ∘ φ_h = φ_{gh}.
        let n = 32;
        let ctx = ctx(n, 40);
        let a: Vec<u64> = (0..n as u64).map(|i| i + 2).collect();
        let g = 5u64;
        let h = 9u64;
        let gh = (g * h) % (2 * n as u64);
        let step = ctx.galois_coeff(&ctx.galois_coeff(&a, h), g);
        let direct = ctx.galois_coeff(&a, gh);
        assert_eq!(step, direct);
    }

    #[test]
    fn bitrev_basics() {
        assert_eq!(bitrev(0b001, 3), 0b100);
        assert_eq!(bitrev(0b110, 3), 0b011);
        assert_eq!(bitrev(1, 1), 1);
        assert_eq!(bitrev(0, 0), 0);
    }

    #[test]
    fn psi_has_order_2n() {
        let n = 128;
        let ctx = ctx(n, 45);
        let m = ctx.modulus();
        assert_eq!(m.pow(ctx.psi(), n as u64), m.value() - 1);
        assert_eq!(m.pow(ctx.psi(), 2 * n as u64), 1);
    }

    #[test]
    fn log_n_accessor_consistent() {
        let ctx = ctx(64, 40);
        assert_eq!(1usize << ctx.log_n(), ctx.n());
    }
}
