//! Randomness sampling for CKKS key generation and encryption.
//!
//! Three distributions are needed (§II-A): uniform polynomials (the `a`
//! component of ciphertexts and keys), sparse/dense ternary secrets with a
//! prescribed Hamming weight (Table IV: `H_d`, `H_s`), and discrete-Gaussian
//! errors.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ntt::NttContext;
use crate::poly::{Format, Limb, Poly};

/// Samples a polynomial with independently uniform residues in every limb.
///
/// This matches how implementations sample the public randomness `a`: a
/// uniform element of `R_Q` has independent uniform residues by CRT.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, basis: &[Arc<NttContext>], format: Format) -> Poly {
    let limbs = basis
        .iter()
        .map(|c| {
            let q = c.modulus().value();
            let data = (0..c.n()).map(|_| rng.gen_range(0..q)).collect();
            Limb::from_data(c.clone(), data)
        })
        .collect();
    Poly::from_limbs(limbs, format)
}

/// Samples a ternary secret with exactly `hamming_weight` nonzero
/// coefficients, each ±1 with equal probability. Returned in the coefficient
/// domain.
///
/// # Panics
///
/// Panics if `hamming_weight` exceeds the ring degree.
pub fn ternary<R: Rng + ?Sized>(
    rng: &mut R,
    basis: &[Arc<NttContext>],
    hamming_weight: usize,
) -> Poly {
    let n = basis[0].n();
    assert!(hamming_weight <= n, "hamming weight exceeds ring degree");
    let mut signs = vec![0i64; n];
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    for &i in idx.iter().take(hamming_weight) {
        signs[i] = if rng.gen_bool(0.5) { 1 } else { -1 };
    }
    Poly::from_coeff_i64(basis, &signs)
}

/// Samples a discrete-Gaussian error polynomial (σ ≈ 3.2 by convention),
/// returned in the coefficient domain.
///
/// Uses rounded Box–Muller sampling, adequate for functional evaluation (we
/// are not claiming constant-time or provable statistical distance here).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, basis: &[Arc<NttContext>], sigma: f64) -> Poly {
    let n = basis[0].n();
    let mut coeffs = vec![0i64; n];
    for pair in coeffs.chunks_mut(2) {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..core::f64::consts::TAU);
        let r = (-2.0 * u1.ln()).sqrt() * sigma;
        pair[0] = (r * u2.cos()).round() as i64;
        if pair.len() > 1 {
            pair[1] = (r * u2.sin()).round() as i64;
        }
    }
    Poly::from_coeff_i64(basis, &coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::Modulus;
    use crate::prime::generate_ntt_primes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn basis(n: usize, l: usize) -> Vec<Arc<NttContext>> {
        generate_ntt_primes(40, l, 2 * n as u64)
            .into_iter()
            .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
            .collect()
    }

    #[test]
    fn uniform_in_range_and_nontrivial() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = basis(64, 2);
        let p = uniform(&mut rng, &b, Format::Eval);
        assert_eq!(p.format(), Format::Eval);
        for l in p.limbs() {
            let q = l.ctx().modulus().value();
            assert!(l.data().iter().all(|&x| x < q));
            // Overwhelmingly unlikely to be all equal.
            assert!(l.data().windows(2).any(|w| w[0] != w[1]));
        }
    }

    #[test]
    fn ternary_has_exact_weight() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = basis(64, 2);
        let s = ternary(&mut rng, &b, 16);
        let m = b[0].modulus();
        let nonzero = s.limb(0).data().iter().filter(|&&x| x != 0).count();
        assert_eq!(nonzero, 16);
        for &x in s.limb(0).data() {
            assert!(
                x == 0 || x == 1 || x == m.value() - 1,
                "ternary values only"
            );
        }
        // Limbs must agree on the underlying signed value.
        let m1 = b[1].modulus();
        for k in 0..64 {
            assert_eq!(
                m.to_centered(s.limb(0).data()[k]),
                m1.to_centered(s.limb(1).data()[k])
            );
        }
    }

    #[test]
    fn gaussian_is_small_and_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = basis(256, 1);
        let e = gaussian(&mut rng, &b, 3.2);
        let m = b[0].modulus();
        let vals: Vec<i64> = e.limb(0).data().iter().map(|&x| m.to_centered(x)).collect();
        assert!(vals.iter().all(|&v| v.abs() < 40), "tail bound ~ 12σ");
        let mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 1.0, "roughly centered, got {mean}");
        let var: f64 =
            vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(
            (var - 3.2f64.powi(2)).abs() < 5.0,
            "variance near σ², got {var}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let b = basis(32, 1);
        let p1 = uniform(&mut StdRng::seed_from_u64(7), &b, Format::Coeff);
        let p2 = uniform(&mut StdRng::seed_from_u64(7), &b, Format::Coeff);
        assert_eq!(p1.limb(0).data(), p2.limb(0).data());
    }
}
