//! Prime-field arithmetic modulo a word-sized prime.
//!
//! All CKKS limb arithmetic happens in `Z_q` for NTT-friendly primes
//! `q ≡ 1 (mod 2N)`. [`Modulus`] bundles a prime with the precomputed
//! constants used by Barrett and Shoup reductions so that the hot paths
//! (NTT butterflies, element-wise multiply-accumulate) avoid 128-bit
//! division.

/// A prime modulus `q < 2^62` with precomputed reduction constants.
///
/// # Example
///
/// ```
/// use ckks_math::modulus::Modulus;
/// let q = Modulus::new(1152921504606845473); // some 60-bit prime
/// let a = q.mul(3, 5);
/// assert_eq!(a, 15);
/// assert_eq!(q.mul(q.value() - 1, q.value() - 1), 1); // (-1)^2 = 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    q: u64,
    /// Barrett constant: `floor(2^128 / q)` split into (hi, lo) 64-bit words.
    barrett_hi: u64,
    barrett_lo: u64,
}

impl Modulus {
    /// Creates a modulus context.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62` (the headroom required by the lazy
    /// reductions used in the NTT).
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2");
        assert!(q < (1u64 << 62), "modulus must be below 2^62");
        // floor(2^128 / q) computed via 128-bit long division in two steps.
        let hi = u128::MAX / q as u128; // floor((2^128 - 1) / q)
                                        // (2^128 - 1) = q * hi + rem; floor(2^128/q) = hi unless rem == q-1,
                                        // in which case it is hi + 1.
        let rem = u128::MAX - hi * q as u128;
        let floor_2_128 = if rem == (q as u128 - 1) { hi + 1 } else { hi };
        Self {
            q,
            barrett_hi: (floor_2_128 >> 64) as u64,
            barrett_lo: floor_2_128 as u64,
        }
    }

    /// The prime value.
    #[inline]
    pub const fn value(&self) -> u64 {
        self.q
    }

    /// Number of significant bits of `q`.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }

    /// Reduces an arbitrary `u64` into `[0, q)`.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        a % self.q
    }

    /// Reduces a full 128-bit product into `[0, q)` with Barrett reduction.
    #[inline]
    pub fn reduce_u128(&self, a: u128) -> u64 {
        // Estimate quotient: qhat = floor(a * floor(2^128/q) / 2^128).
        // Only the high 128 bits of the 256-bit product are needed.
        let a_lo = a as u64;
        let a_hi = (a >> 64) as u64;
        // a * barrett = (a_hi*2^64 + a_lo) * (b_hi*2^64 + b_lo)
        let lo_lo = (a_lo as u128) * (self.barrett_lo as u128);
        let lo_hi = (a_lo as u128) * (self.barrett_hi as u128);
        let hi_lo = (a_hi as u128) * (self.barrett_lo as u128);
        let hi_hi = (a_hi as u128) * (self.barrett_hi as u128);
        let mid = lo_hi + (lo_lo >> 64) + hi_lo; // no overflow: each < 2^128/2
        let qhat = hi_hi + (mid >> 64);
        let mut r = (a - qhat * self.q as u128) as u64;
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular addition of values already in `[0, q)`.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction of values already in `[0, q)`.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Modular negation of a value already in `[0, q)`.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Modular multiplication of values already in `[0, q)`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add `a*b + c mod q`.
    #[inline]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q && c < self.q);
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Precomputes the Shoup companion word `floor(b * 2^64 / q)` for a fixed
    /// multiplicand `b`, enabling division-free [`Self::mul_shoup`].
    #[inline]
    pub fn shoup(&self, b: u64) -> u64 {
        debug_assert!(b < self.q);
        (((b as u128) << 64) / self.q as u128) as u64
    }

    /// Multiplication by a fixed operand with its Shoup precomputation.
    ///
    /// `b_shoup` must be `self.shoup(b)`.
    #[inline]
    pub fn mul_shoup(&self, a: u64, b: u64, b_shoup: u64) -> u64 {
        debug_assert!(a < self.q);
        let quo = ((a as u128 * b_shoup as u128) >> 64) as u64;
        let r = a.wrapping_mul(b).wrapping_sub(quo.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Modular exponentiation `a^e mod q` by square-and-multiply.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem (`q` must be prime).
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod q)`, which has no inverse.
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert!(a != 0, "zero has no modular inverse");
        self.pow(a, self.q - 2)
    }

    /// Maps a signed value to its representative in `[0, q)`.
    #[inline]
    pub fn from_i64(&self, v: i64) -> u64 {
        let r = v.rem_euclid(self.q as i64);
        r as u64
    }

    /// Maps a residue to its centered representative in `(-q/2, q/2]`.
    #[inline]
    pub fn to_centered(&self, a: u64) -> i64 {
        debug_assert!(a < self.q);
        if a > self.q / 2 {
            a as i64 - self.q as i64
        } else {
            a as i64
        }
    }
}

impl std::fmt::Display for Modulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Z_{}", self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q60() -> Modulus {
        // 60-bit NTT-friendly prime for N = 2^16.
        Modulus::new(crate::prime::generate_ntt_primes(60, 1, 1 << 17)[0])
    }

    #[test]
    fn add_sub_roundtrip() {
        let m = q60();
        let q = m.value();
        for (a, b) in [(0, 0), (1, q - 1), (q - 1, q - 1), (q / 2, q / 2 + 1)] {
            let s = m.add(a, b);
            assert_eq!(m.sub(s, b), a);
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let m = q60();
        let q = m.value();
        let cases = [
            (0, 5),
            (q - 1, q - 1),
            (q / 2, 3),
            (123456789, 987654321),
            (q - 2, q / 3),
        ];
        for (a, b) in cases {
            let want = ((a as u128 * b as u128) % q as u128) as u64;
            assert_eq!(m.mul(a, b), want);
        }
    }

    #[test]
    fn shoup_matches_mul() {
        let m = q60();
        let q = m.value();
        for b in [1u64, 2, q - 1, q / 7, 0x1234_5678_9abc] {
            let bs = m.shoup(b);
            for a in [0u64, 1, q - 1, q / 3, 42] {
                assert_eq!(m.mul_shoup(a, b, bs), m.mul(a, b));
            }
        }
    }

    #[test]
    fn pow_and_inv() {
        let m = q60();
        for a in [2u64, 3, 12345, m.value() - 1] {
            let inv = m.inv(a);
            assert_eq!(m.mul(a, inv), 1);
        }
        assert_eq!(m.pow(2, 10), 1024);
    }

    #[test]
    fn centered_representatives() {
        let m = Modulus::new(17);
        assert_eq!(m.to_centered(0), 0);
        assert_eq!(m.to_centered(8), 8);
        assert_eq!(m.to_centered(9), -8);
        assert_eq!(m.to_centered(16), -1);
        assert_eq!(m.from_i64(-1), 16);
        assert_eq!(m.from_i64(-17), 0);
    }

    #[test]
    fn small_modulus_supported() {
        // The PIM functional model uses 28-bit primes.
        let m = Modulus::new(268369921); // 28-bit prime, 1 mod 2^15
        assert_eq!(m.mul(m.value() - 1, 2), m.value() - 2);
    }

    #[test]
    #[should_panic(expected = "zero has no modular inverse")]
    fn inv_of_zero_panics() {
        q60().inv(0);
    }
}
