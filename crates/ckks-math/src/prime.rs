//! Prime generation for NTT-friendly RNS bases.
//!
//! CKKS needs primes `q ≡ 1 (mod 2N)` so that `Z_q` contains a primitive
//! `2N`-th root of unity, enabling the negacyclic NTT (the paper exploits the
//! same property to build the Montgomery reduction circuit of the MMAC units,
//! §VI-A).

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the standard 12-base witness set which is known to be sufficient for
/// all 64-bit integers.
///
/// # Example
///
/// ```
/// assert!(ckks_math::prime::is_prime(1_000_000_007));
/// assert!(!ckks_math::prime::is_prime(1_000_000_008));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    a %= m;
    let mut r = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            r = mul_mod(r, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    r
}

/// Generates `count` distinct primes of exactly `bits` bits satisfying
/// `p ≡ 1 (mod step)`, searching downward from `2^bits`.
///
/// `step` is typically `2N` for ring degree `N`. Primes are returned in
/// descending order.
///
/// # Panics
///
/// Panics if `bits` is not in `[20, 62]`, if `step` is not a power of two,
/// or if fewer than `count` primes exist in the range (practically impossible
/// for CKKS-sized inputs).
///
/// # Example
///
/// ```
/// let ps = ckks_math::prime::generate_ntt_primes(40, 3, 2048);
/// assert_eq!(ps.len(), 3);
/// for p in ps {
///     assert!(ckks_math::prime::is_prime(p));
///     assert_eq!(p % 2048, 1);
/// }
/// ```
pub fn generate_ntt_primes(bits: u32, count: usize, step: u64) -> Vec<u64> {
    assert!((20..=62).contains(&bits), "prime size out of range");
    assert!(step.is_power_of_two(), "step must be a power of two");
    let hi = 1u64 << bits;
    let lo = 1u64 << (bits - 1);
    let mut out = Vec::with_capacity(count);
    // Largest candidate ≡ 1 mod step below 2^bits.
    let mut cand = hi - step + 1;
    while out.len() < count && cand > lo {
        if is_prime(cand) {
            out.push(cand);
        }
        cand -= step;
    }
    assert!(
        out.len() == count,
        "not enough {bits}-bit primes congruent to 1 mod {step}"
    );
    out
}

/// Generates primes close to a target value (used for rescaling primes whose
/// value should approximate the scaling factor Δ).
///
/// Returns `count` distinct primes `≡ 1 (mod step)` nearest to `target`,
/// alternating above/below. Primes already present in `exclude` are skipped.
///
/// # Panics
///
/// Panics if `step` is not a power of two or the search space is exhausted.
pub fn generate_primes_near(target: u64, count: usize, step: u64, exclude: &[u64]) -> Vec<u64> {
    assert!(step.is_power_of_two(), "step must be a power of two");
    let base = (target / step) * step + 1;
    let mut out = Vec::with_capacity(count);
    let mut k = 0u64;
    while out.len() < count {
        for cand in [base.wrapping_add(k * step), base.wrapping_sub(k * step)] {
            if out.len() >= count {
                break;
            }
            if cand > (1 << 20)
                && cand < (1 << 62)
                && is_prime(cand)
                && !exclude.contains(&cand)
                && !out.contains(&cand)
            {
                out.push(cand);
            }
        }
        k += 1;
        assert!(k < (1 << 40), "prime search space exhausted");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 7917];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases.
        for c in [2047u64, 1373653, 25326001, 3215031751] {
            assert!(!is_prime(c), "{c} must be rejected");
        }
    }

    #[test]
    fn ntt_primes_have_right_form() {
        let n = 1u64 << 16;
        let ps = generate_ntt_primes(54, 4, 2 * n);
        assert_eq!(ps.len(), 4);
        let mut prev = u64::MAX;
        for p in ps {
            assert!(is_prime(p));
            assert_eq!(p % (2 * n), 1);
            assert_eq!(64 - p.leading_zeros(), 54);
            assert!(p < prev, "descending order");
            prev = p;
        }
    }

    #[test]
    fn primes_near_target() {
        let target = 1u64 << 40;
        let ps = generate_primes_near(target, 3, 2048, &[]);
        assert_eq!(ps.len(), 3);
        for p in &ps {
            assert!(is_prime(*p));
            assert_eq!(p % 2048, 1);
            let ratio = *p as f64 / target as f64;
            assert!((0.99..1.01).contains(&ratio), "close to target");
        }
    }

    #[test]
    fn exclusion_respected() {
        let target = 1u64 << 40;
        let first = generate_primes_near(target, 1, 2048, &[]);
        let second = generate_primes_near(target, 1, 2048, &first);
        assert_ne!(first[0], second[0]);
    }
}
