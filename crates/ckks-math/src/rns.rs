//! Residue number system (RNS) machinery: basis conversion (BConv), exact
//! rescaling, ModDown, and CRT reconstruction.
//!
//! BConv is the core of ModSwitch (§II-B): converting the representation of a
//! polynomial from one prime basis to another. We implement both the
//! *approximate* conversion used by production RNS-CKKS (a small multiple of
//! the source modulus leaks into the result and is absorbed as noise) and the
//! float-corrected *exact* conversion (HPS-style) used in tests.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::ntt::NttContext;
use crate::poly::{for_each_tuned, map_tuned, Format, Limb, Poly};
use crate::pool;
use crate::tune::OpClass;

/// Arbitrary-precision unsigned integer (little-endian 64-bit limbs).
///
/// A deliberately minimal big-int: just enough for CRT reconstruction and
/// modulus products. Not performance-critical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UBig(Vec<u64>);

impl UBig {
    /// Zero.
    pub fn zero() -> Self {
        Self(Vec::new())
    }

    /// From a single word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self(vec![v])
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_empty()
    }

    fn normalize(&mut self) {
        while self.0.last() == Some(&0) {
            self.0.pop();
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &UBig) {
        let mut carry = 0u64;
        for i in 0..other.0.len().max(self.0.len()) {
            if i >= self.0.len() {
                self.0.push(0);
            }
            let b = other.0.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.0[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.0[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.0.push(carry);
        }
    }

    /// `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &UBig) {
        assert!(*self >= *other, "UBig subtraction underflow");
        let mut borrow = 0u64;
        for i in 0..self.0.len() {
            let b = other.0.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.0[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.0[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        self.normalize();
    }

    /// Returns `self * m` for a word multiplier.
    pub fn mul_small(&self, m: u64) -> UBig {
        if m == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.0.len() + 1);
        let mut carry = 0u128;
        for &w in &self.0 {
            let t = w as u128 * m as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        UBig(out)
    }

    /// Returns `self mod m` for a word modulus.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn mod_small(&self, m: u64) -> u64 {
        assert!(m != 0, "modulus must be nonzero");
        let mut r = 0u128;
        for &w in self.0.iter().rev() {
            r = ((r << 64) | w as u128) % m as u128;
        }
        r as u64
    }

    /// Returns `floor(self / 2)`.
    pub fn half(&self) -> UBig {
        let mut out = self.0.clone();
        let mut carry = 0u64;
        for w in out.iter_mut().rev() {
            let new_carry = *w & 1;
            *w = (*w >> 1) | (carry << 63);
            carry = new_carry;
        }
        let mut r = UBig(out);
        r.normalize();
        r
    }

    /// Lossy conversion to `f64` (standard floating rounding).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &w in self.0.iter().rev() {
            v = v * 18446744073709551616.0 + w as f64;
        }
        v
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        match self.0.last() {
            None => 0,
            Some(&w) => (self.0.len() as u32 - 1) * 64 + (64 - w.leading_zeros()),
        }
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0.len() != other.0.len() {
            return self.0.len().cmp(&other.0.len());
        }
        for (a, b) in self.0.iter().rev().zip(other.0.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

/// An RNS basis: an ordered list of coprime prime contexts sharing a ring
/// degree.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    ctxs: Vec<Arc<NttContext>>,
}

impl RnsBasis {
    /// Wraps prime contexts into a basis.
    ///
    /// # Panics
    ///
    /// Panics if empty, if degrees disagree, or if primes repeat.
    pub fn new(ctxs: Vec<Arc<NttContext>>) -> Self {
        assert!(!ctxs.is_empty(), "empty basis");
        let n = ctxs[0].n();
        assert!(ctxs.iter().all(|c| c.n() == n), "mixed ring degrees");
        for i in 0..ctxs.len() {
            for j in i + 1..ctxs.len() {
                assert_ne!(
                    ctxs[i].modulus().value(),
                    ctxs[j].modulus().value(),
                    "repeated prime in basis"
                );
            }
        }
        Self { ctxs }
    }

    /// The prime contexts.
    pub fn contexts(&self) -> &[Arc<NttContext>] {
        &self.ctxs
    }

    /// Number of primes.
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// True iff the basis is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.ctxs.is_empty()
    }

    /// The product of all primes as a big integer.
    pub fn product(&self) -> UBig {
        let mut p = UBig::from_u64(1);
        for c in &self.ctxs {
            p = p.mul_small(c.modulus().value());
        }
        p
    }
}

/// Fast basis conversion from basis `A = {a_i}` to basis `B = {b_j}`
/// (the BConv op of §II-B).
///
/// Operates on coefficient-domain limb data.
#[derive(Debug)]
pub struct BasisConverter {
    from: Vec<Arc<NttContext>>,
    to: Vec<Arc<NttContext>>,
    /// `(A/a_i)^{-1} mod a_i`.
    a_hat_inv: Vec<u64>,
    /// `(A/a_i) mod b_j`, indexed `[i][j]`.
    a_hat_mod_b: Vec<Vec<u64>>,
    /// `A mod b_j` (for the exact-conversion correction term).
    a_mod_b: Vec<u64>,
    /// `1 / a_i` as floats (for the correction estimate).
    inv_a: Vec<f64>,
}

impl BasisConverter {
    /// Precomputes conversion constants from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if the bases share a prime or degrees disagree.
    pub fn new(from: &[Arc<NttContext>], to: &[Arc<NttContext>]) -> Self {
        assert!(!from.is_empty() && !to.is_empty(), "empty basis");
        let n = from[0].n();
        assert!(
            from.iter().chain(to.iter()).all(|c| c.n() == n),
            "mixed ring degrees"
        );
        for f in from {
            for t in to {
                assert_ne!(
                    f.modulus().value(),
                    t.modulus().value(),
                    "bases must be disjoint"
                );
            }
        }
        let mut a = UBig::from_u64(1);
        for c in from {
            a = a.mul_small(c.modulus().value());
        }
        let mut a_hat_inv = Vec::with_capacity(from.len());
        let mut a_hat_mod_b = Vec::with_capacity(from.len());
        for (i, fi) in from.iter().enumerate() {
            let mut hat = UBig::from_u64(1);
            for (j, fj) in from.iter().enumerate() {
                if i != j {
                    hat = hat.mul_small(fj.modulus().value());
                }
            }
            let mi = fi.modulus();
            a_hat_inv.push(mi.inv(hat.mod_small(mi.value())));
            a_hat_mod_b.push(
                to.iter()
                    .map(|t| hat.mod_small(t.modulus().value()))
                    .collect(),
            );
        }
        let a_mod_b = to
            .iter()
            .map(|t| a.mod_small(t.modulus().value()))
            .collect();
        let inv_a = from
            .iter()
            .map(|f| 1.0 / f.modulus().value() as f64)
            .collect();
        Self {
            from: from.to_vec(),
            to: to.to_vec(),
            a_hat_inv,
            a_hat_mod_b,
            a_mod_b,
            inv_a,
        }
    }

    /// The source basis.
    pub fn from_basis(&self) -> &[Arc<NttContext>] {
        &self.from
    }

    /// The target basis.
    pub fn to_basis(&self) -> &[Arc<NttContext>] {
        &self.to
    }

    fn convert_impl(&self, limbs: &[&[u64]], exact: bool) -> Vec<Limb> {
        assert_eq!(limbs.len(), self.from.len(), "source limb count mismatch");
        let n = self.from[0].n();
        assert!(limbs.iter().all(|l| l.len() == n), "limb length mismatch");
        // v_i = x_i * (A/a_i)^{-1} mod a_i — independent per source limb.
        let v: Vec<Vec<u64>> = map_tuned(OpClass::Elementwise, n, limbs, |i, limb| {
            let m = self.from[i].modulus();
            let hs = m.shoup(self.a_hat_inv[i]);
            let mut out = pool::take(n);
            for (dst, &x) in out.iter_mut().zip(limb.iter()) {
                *dst = m.mul_shoup(x, self.a_hat_inv[i], hs);
            }
            out
        });
        // Correction multiples (exact conversion only): e_k = round(Σ v_i/a_i).
        // The per-position float sum runs in a fixed order regardless of
        // thread count, keeping rounding deterministic.
        let corrections: Option<Vec<u64>> = exact.then(|| {
            (0..n)
                .map(|k| {
                    let s: f64 = v
                        .iter()
                        .zip(&self.inv_a)
                        .map(|(vi, &ia)| vi[k] as f64 * ia)
                        .sum();
                    (s + 0.5).floor() as u64
                })
                .collect()
        });
        // Each target limb accumulates over all v_i — independent per target.
        let out = map_tuned(OpClass::BConv, limbs.len() * n, &self.to, |j, t| {
            let m = t.modulus();
            let mut out = pool::take_zeroed(n);
            for (i, vi) in v.iter().enumerate() {
                let hj = self.a_hat_mod_b[i][j];
                for (dst, &x) in out.iter_mut().zip(vi.iter()) {
                    *dst = m.reduce_u128(*dst as u128 + x as u128 * hj as u128);
                }
            }
            if let Some(es) = &corrections {
                let a_j = self.a_mod_b[j];
                for (dst, &e) in out.iter_mut().zip(es.iter()) {
                    let sub = m.mul(m.reduce(e), a_j);
                    *dst = m.sub(*dst, sub);
                }
            }
            Limb::from_data(t.clone(), out)
        });
        for vi in v {
            pool::give(vi);
        }
        out
    }

    /// Approximate conversion: the output may carry an additive multiple
    /// `u·A` with `|u| ≤ len(from)/2`, absorbed as noise (standard RNS-CKKS).
    pub fn convert_approx(&self, limbs: &[&[u64]]) -> Vec<Limb> {
        self.convert_impl(limbs, false)
    }

    /// Exact conversion for inputs whose centered value is well within
    /// `±A/2` (float-corrected HPS conversion).
    pub fn convert_exact(&self, limbs: &[&[u64]]) -> Vec<Limb> {
        self.convert_impl(limbs, true)
    }
}

/// ModDown: maps a polynomial over the extended basis `Q ∪ P` back to `Q`,
/// dividing by `P` (§II-B; the final step of HROT/HMULT key switching).
#[derive(Debug)]
pub struct ModDown {
    q_basis: Vec<Arc<NttContext>>,
    p_to_q: BasisConverter,
    /// `P^{-1} mod q_j`.
    p_inv_mod_q: Vec<u64>,
}

impl ModDown {
    /// Precomputes for the given `Q` and `P` bases.
    pub fn new(q_basis: &[Arc<NttContext>], p_basis: &[Arc<NttContext>]) -> Self {
        let p_to_q = BasisConverter::new(p_basis, q_basis);
        let mut p = UBig::from_u64(1);
        for c in p_basis {
            p = p.mul_small(c.modulus().value());
        }
        let p_inv_mod_q = q_basis
            .iter()
            .map(|qc| {
                let m = qc.modulus();
                m.inv(p.mod_small(m.value()))
            })
            .collect();
        Self {
            q_basis: q_basis.to_vec(),
            p_to_q,
            p_inv_mod_q,
        }
    }

    /// Number of `Q` limbs expected.
    pub fn q_len(&self) -> usize {
        self.q_basis.len()
    }

    /// Number of `P` limbs expected.
    pub fn p_len(&self) -> usize {
        self.p_to_q.from_basis().len()
    }

    /// Applies ModDown to an evaluation-domain polynomial whose limbs are
    /// ordered `[q_0..q_{L-1}, p_0..p_{α-1}]` (a prefix of the Q basis is
    /// allowed: the ciphertext may be at a reduced level).
    ///
    /// # Panics
    ///
    /// Panics if the input is not in the evaluation domain or the limb
    /// structure does not match.
    pub fn apply(&self, poly: &Poly) -> Poly {
        assert_eq!(poly.format(), Format::Eval, "ModDown expects Eval input");
        let alpha = self.p_len();
        assert!(
            poly.num_limbs() > alpha,
            "input must contain Q limbs plus {alpha} P limbs"
        );
        let l = poly.num_limbs() - alpha;
        // Verify structure.
        for i in 0..l {
            assert_eq!(
                poly.limb(i).ctx().modulus().value(),
                self.q_basis[i].modulus().value(),
                "Q limb {i} mismatch"
            );
        }
        for i in 0..alpha {
            assert_eq!(
                poly.limb(l + i).ctx().modulus().value(),
                self.p_to_q.from_basis()[i].modulus().value(),
                "P limb {i} mismatch"
            );
        }
        // INTT the P limbs (pooled copies), convert to (the first l primes
        // of) Q.
        let n = poly.n();
        let mut p_coeff: Vec<Vec<u64>> = (0..alpha)
            .map(|i| {
                let mut buf = pool::take(n);
                buf.copy_from_slice(poly.limb(l + i).data());
                buf
            })
            .collect();
        // Both NTT batches here go through the same tuner class, keyed on
        // their *actual* batch size (α inverse transforms, then l forward
        // transforms) — the old static gates keyed the two phases on
        // different quantities for the same kind of work.
        for_each_tuned(OpClass::Ntt, n, &mut p_coeff, |i, data| {
            self.p_to_q.from_basis()[i].inverse(data);
        });
        let refs: Vec<&[u64]> = p_coeff.iter().map(|v| v.as_slice()).collect();
        let converted = self.p_to_q.convert_approx(&refs);
        // y_j = (x_j - conv_j) * P^{-1} mod q_j, in the evaluation domain.
        // One forward NTT per Q limb — independent per limb.
        let limbs: Vec<Limb> = map_tuned(OpClass::Ntt, n, &self.q_basis[..l], |j, qc| {
            let m = qc.modulus();
            let mut conv = pool::take(n);
            conv.copy_from_slice(converted[j].data());
            qc.forward(&mut conv);
            let pinv = self.p_inv_mod_q[j];
            let pinv_s = m.shoup(pinv);
            let mut data = pool::take(n);
            for ((d, &x), &c) in data.iter_mut().zip(poly.limb(j).data()).zip(conv.iter()) {
                *d = m.mul_shoup(m.sub(x, c), pinv, pinv_s);
            }
            pool::give(conv);
            Limb::from_data(qc.clone(), data)
        });
        for buf in p_coeff {
            pool::give(buf);
        }
        Poly::from_limbs(limbs, Format::Eval)
    }
}

/// Rescales an evaluation-domain polynomial by its last prime: drops the last
/// limb and divides the value by that prime (the CKKS rescale / the epilogue
/// of `ModDownEp` in Table II).
///
/// # Panics
///
/// Panics if the polynomial is not in the evaluation domain or has a single
/// limb.
pub fn rescale_in_place(poly: &mut Poly) {
    assert_eq!(poly.format(), Format::Eval, "rescale expects Eval input");
    assert!(
        poly.num_limbs() > 1,
        "cannot rescale a single-limb polynomial"
    );
    let n = poly.n();
    let last = poly.pop_limb();
    let q_last = last.ctx().modulus().value();
    let mut last_coeff = pool::take(n);
    last_coeff.copy_from_slice(last.data());
    last.ctx().inverse(&mut last_coeff);
    let half = q_last / 2;
    // Each remaining limb builds its own correction term and runs one
    // forward NTT — independent per limb.
    let last_coeff_ref = &last_coeff;
    for_each_tuned(OpClass::Ntt, n, poly.limbs_mut(), |_, limb| {
        let qc = Arc::clone(limb.ctx());
        let m = *qc.modulus();
        // Reduce the centered representative of x_last into q_j.
        let mut corr = pool::take(n);
        for (d, &x) in corr.iter_mut().zip(last_coeff_ref.iter()) {
            *d = if x > half {
                // x - q_last (negative)
                m.from_i64(x as i64 - q_last as i64)
            } else {
                m.reduce(x)
            };
        }
        qc.forward(&mut corr);
        let inv = m.inv(m.reduce(q_last));
        let inv_s = m.shoup(inv);
        for (x, &c) in limb.data_mut().iter_mut().zip(corr.iter()) {
            *x = m.mul_shoup(m.sub(*x, c), inv, inv_s);
        }
        pool::give(corr);
    });
    pool::give(last_coeff);
}

/// CRT reconstruction of centered big-integer coefficients from RNS limbs.
#[derive(Debug)]
pub struct CrtReconstructor {
    moduli: Vec<u64>,
    q: UBig,
    q_half: UBig,
    /// `Q / q_i`.
    q_hat: Vec<UBig>,
    /// `(Q/q_i)^{-1} mod q_i`.
    q_hat_inv: Vec<u64>,
}

impl CrtReconstructor {
    /// Precomputes for the given basis.
    pub fn new(basis: &[Arc<NttContext>]) -> Self {
        let moduli: Vec<u64> = basis.iter().map(|c| c.modulus().value()).collect();
        let mut q = UBig::from_u64(1);
        for &m in &moduli {
            q = q.mul_small(m);
        }
        let mut q_hat = Vec::with_capacity(moduli.len());
        let mut q_hat_inv = Vec::with_capacity(moduli.len());
        for (i, c) in basis.iter().enumerate() {
            let mut hat = UBig::from_u64(1);
            for (j, &m) in moduli.iter().enumerate() {
                if i != j {
                    hat = hat.mul_small(m);
                }
            }
            let m = c.modulus();
            q_hat_inv.push(m.inv(hat.mod_small(m.value())));
            q_hat.push(hat);
        }
        let q_half = q.half();
        Self {
            moduli,
            q,
            q_half,
            q_hat,
            q_hat_inv,
        }
    }

    /// The modulus product `Q`.
    pub fn modulus_product(&self) -> &UBig {
        &self.q
    }

    /// Reconstructs the centered value at coefficient position `k` from the
    /// per-limb residues, returned as `f64` (adequate for measuring CKKS
    /// decode error, not exact beyond 53 bits).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    pub fn reconstruct_centered_f64(&self, residues: &[u64]) -> f64 {
        assert_eq!(residues.len(), self.moduli.len(), "residue count mismatch");
        // x = Σ [r_i * qhat_inv_i]_{q_i} * qhat_i  (mod Q)
        let mut x = UBig::zero();
        for (i, &r) in residues.iter().enumerate() {
            let m = crate::modulus::Modulus::new(self.moduli[i]);
            let t = m.mul(m.reduce(r), self.q_hat_inv[i]);
            x.add_assign(&self.q_hat[i].mul_small(t));
        }
        // Reduce mod Q (x < L*Q so a short subtraction loop suffices).
        while x >= self.q {
            x.sub_assign(&self.q);
        }
        if x > self.q_half {
            let mut neg = self.q.clone();
            neg.sub_assign(&x);
            -neg.to_f64()
        } else {
            x.to_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulus::Modulus;
    use crate::prime::generate_ntt_primes;

    fn make_basis(n: usize, count: usize, bits: u32, skip: usize) -> Vec<Arc<NttContext>> {
        generate_ntt_primes(bits, count + skip, 2 * n as u64)
            .into_iter()
            .skip(skip)
            .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
            .collect()
    }

    #[test]
    fn ubig_arithmetic() {
        let mut a = UBig::from_u64(u64::MAX);
        a.add_assign(&UBig::from_u64(1));
        assert_eq!(a.bits(), 65);
        let b = a.mul_small(u64::MAX);
        assert!(b > a);
        let mut c = b.clone();
        c.sub_assign(&b);
        assert!(c.is_zero());
        assert_eq!(UBig::from_u64(100).mod_small(7), 2);
        assert_eq!(UBig::from_u64(100).half(), UBig::from_u64(50));
        assert_eq!(UBig::from_u64(1 << 20).to_f64(), 1048576.0);
    }

    #[test]
    fn ubig_mod_small_matches_u128() {
        let a = UBig::from_u64(0xdead_beef_1234_5678).mul_small(0x9999_8888_7777_6666);
        let val = 0xdead_beef_1234_5678u128 * 0x9999_8888_7777_6666u128;
        for m in [3u64, 97, 1 << 40, 0xffff_fffb] {
            assert_eq!(a.mod_small(m), (val % m as u128) as u64);
        }
    }

    #[test]
    fn bconv_exact_small_values() {
        let n = 16;
        let from = make_basis(n, 2, 40, 0);
        let to = make_basis(n, 2, 40, 2);
        let conv = BasisConverter::new(&from, &to);
        // Encode small signed values in the source basis.
        let vals: Vec<i64> = (0..n as i64).map(|i| i * 1001 - 8000).collect();
        let src = Poly::from_coeff_i64(&from, &vals);
        let refs: Vec<&[u64]> = (0..src.num_limbs()).map(|i| src.limb(i).data()).collect();
        let out = conv.convert_exact(&refs);
        let want = Poly::from_coeff_i64(&to, &vals);
        for (l, w) in out.iter().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn bconv_approx_error_is_multiple_of_source_modulus() {
        let n = 8;
        let from = make_basis(n, 2, 40, 0);
        let to = make_basis(n, 1, 40, 2);
        let conv = BasisConverter::new(&from, &to);
        let vals: Vec<i64> = (0..n as i64).map(|i| -i * 12345).collect();
        let src = Poly::from_coeff_i64(&from, &vals);
        let refs: Vec<&[u64]> = (0..src.num_limbs()).map(|i| src.limb(i).data()).collect();
        let approx = conv.convert_approx(&refs);
        let m = to[0].modulus();
        let a_mod: u64 = {
            let mut a = UBig::from_u64(1);
            for c in &from {
                a = a.mul_small(c.modulus().value());
            }
            a.mod_small(m.value())
        };
        let want = Poly::from_coeff_i64(&to, &vals);
        for (got, wl) in approx[0].data().iter().zip(want.limb(0).data()) {
            // got - want must be u * A mod q for small |u|.
            let diff = m.sub(*got, *wl);
            let ok = (0..=2u64).any(|u| {
                diff == m.reduce_u128(u as u128 * a_mod as u128)
                    || m.neg(diff) == m.reduce_u128(u as u128 * a_mod as u128)
            });
            assert!(ok, "approx error must be a small multiple of A");
        }
    }

    #[test]
    fn mod_down_divides_by_p() {
        let n = 16;
        let q_basis = make_basis(n, 2, 40, 0);
        let p_basis = make_basis(n, 1, 40, 2);
        let p_val = p_basis[0].modulus().value();
        let md = ModDown::new(&q_basis, &p_basis);
        assert_eq!(md.q_len(), 2);
        assert_eq!(md.p_len(), 1);
        // Build x = value * P for small values so ModDown returns ~value.
        let vals: Vec<i64> = (0..n as i64).map(|i| i - 8).collect();
        let scaled: Vec<i64> = vals.iter().map(|&v| v * p_val as i64).collect();
        let mut full_basis = q_basis.clone();
        full_basis.extend(p_basis.clone());
        let mut x = Poly::from_coeff_i64(&full_basis, &scaled);
        x.to_eval();
        let mut y = md.apply(&x);
        y.to_coeff();
        let want = Poly::from_coeff_i64(&q_basis, &vals);
        for (l, w) in y.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        let n = 16;
        let basis = make_basis(n, 3, 40, 0);
        let q_last = basis[2].modulus().value();
        let vals: Vec<i64> = (0..n as i64).map(|i| 7 * i - 50).collect();
        let scaled: Vec<i64> = vals.iter().map(|&v| v * q_last as i64).collect();
        let mut x = Poly::from_coeff_i64(&basis, &scaled);
        x.to_eval();
        rescale_in_place(&mut x);
        x.to_coeff();
        assert_eq!(x.num_limbs(), 2);
        let want = Poly::from_coeff_i64(&basis[..2], &vals);
        for (l, w) in x.limbs().zip(want.limbs()) {
            assert_eq!(l.data(), w.data());
        }
    }

    #[test]
    fn rescale_rounds_inexact_values() {
        // x not divisible by q_last: rescale returns round-ish (x/q) with
        // error < 1 in value space, i.e. |q*y - x| <= q/2 + small.
        let n = 8;
        let basis = make_basis(n, 2, 40, 0);
        let q_last = basis[1].modulus().value() as i64;
        let vals: Vec<i64> = (0..n as i64).map(|i| i * q_last + 12345).collect();
        let mut x = Poly::from_coeff_i64(&basis, &vals);
        x.to_eval();
        rescale_in_place(&mut x);
        x.to_coeff();
        let m = basis[0].modulus();
        for (k, &v) in vals.iter().enumerate() {
            let y = m.to_centered(x.limb(0).data()[k]);
            let approx = v as f64 / q_last as f64;
            assert!((y as f64 - approx).abs() <= 1.0, "rounded division");
        }
    }

    #[test]
    fn crt_reconstruction() {
        let n = 8;
        let basis = make_basis(n, 3, 40, 0);
        let crt = CrtReconstructor::new(&basis);
        let vals: Vec<i64> = vec![0, 1, -1, 123456789, -987654321, 42, -42, 7];
        let p = Poly::from_coeff_i64(&basis, &vals);
        for (k, &v) in vals.iter().enumerate().take(n) {
            let residues: Vec<u64> = (0..3).map(|i| p.limb(i).data()[k]).collect();
            let got = crt.reconstruct_centered_f64(&residues);
            assert_eq!(got, v as f64);
        }
        assert!(crt.modulus_product().bits() >= 118);
    }

    #[test]
    #[should_panic(expected = "bases must be disjoint")]
    fn overlapping_bases_rejected() {
        let n = 8;
        let b = make_basis(n, 2, 40, 0);
        let _ = BasisConverter::new(&b, &b);
    }

    #[test]
    fn rns_basis_product() {
        let n = 8;
        let b = RnsBasis::new(make_basis(n, 2, 40, 0));
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        let prod = b.product();
        assert_eq!(prod.mod_small(b.contexts()[0].modulus().value()), 0);
    }
}
