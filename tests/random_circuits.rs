//! Random-circuit property testing: arbitrary sequences of homomorphic ops
//! must track the same computation on plaintext values. This catches
//! cross-op interaction bugs (scale management, level alignment, rotation
//! composition) that single-op unit tests cannot.

use anaheim::ckks::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The op alphabet for random circuits.
#[derive(Debug, Clone)]
enum CircuitOp {
    AddCt(usize),
    SubCt(usize),
    MulCt(usize),
    AddScalar(f64),
    MulScalar(f64),
    Rotate(usize),
    Square,
    Negate,
}

fn arb_op() -> impl Strategy<Value = CircuitOp> {
    prop_oneof![
        (0usize..3).prop_map(CircuitOp::AddCt),
        (0usize..3).prop_map(CircuitOp::SubCt),
        (0usize..3).prop_map(CircuitOp::MulCt),
        (-0.5f64..0.5).prop_map(CircuitOp::AddScalar),
        (-0.9f64..0.9).prop_map(CircuitOp::MulScalar),
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)].prop_map(CircuitOp::Rotate),
        Just(CircuitOp::Square),
        Just(CircuitOp::Negate),
    ]
}

struct Fixture {
    ctx: CkksContext,
    keys: KeySet,
}

fn fixture() -> &'static Fixture {
    use std::sync::OnceLock;
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(8)
                .alpha(2)
                .scale_bits(40)
                .build(),
        );
        let mut rng = StdRng::seed_from_u64(777);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 2, 4, 8]);
        Fixture { ctx, keys }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuit_tracks_plaintext(ops in prop::collection::vec(arb_op(), 1..6),
                                       seed in any::<u64>()) {
        let f = fixture();
        let ctx = &f.ctx;
        let keys = &f.keys;
        let enc = Encoder::new(ctx);
        let ev = Evaluator::new(ctx);
        let m = ctx.slots();
        let mut rng = StdRng::seed_from_u64(seed);

        // Three random input vectors with bounded magnitude.
        use rand::Rng;
        let inputs: Vec<Vec<Complex>> = (0..3)
            .map(|_| {
                (0..m)
                    .map(|_| Complex::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                    .collect()
            })
            .collect();
        let cts: Vec<Ciphertext> = inputs
            .iter()
            .map(|v| keys.public.encrypt(&enc.encode(v, ctx.max_level()), &mut rng))
            .collect();

        // Run the circuit on both representations. Multiplicative ops
        // consume levels; stop when the budget is too shallow.
        let mut ct = cts[0].clone();
        let mut plain: Vec<Complex> = inputs[0].clone();
        let mut mults = 0usize;
        for op in &ops {
            if mults >= 5 {
                break;
            }
            match op {
                CircuitOp::AddCt(i) => {
                    let other = ev.mod_switch_to(&cts[*i], ct.level());
                    // Scale alignment: a fresh ct has scale Δ; ours may
                    // differ after multiplications. Only add when the
                    // scales still agree.
                    if (other.scale() / ct.scale() - 1.0).abs() < 1e-6 {
                        ct = ev.add(&ct, &other);
                        for (p, x) in plain.iter_mut().zip(&inputs[*i]) {
                            *p += *x;
                        }
                    }
                }
                CircuitOp::SubCt(i) => {
                    let other = ev.mod_switch_to(&cts[*i], ct.level());
                    if (other.scale() / ct.scale() - 1.0).abs() < 1e-6 {
                        ct = ev.sub(&ct, &other);
                        for (p, x) in plain.iter_mut().zip(&inputs[*i]) {
                            *p -= *x;
                        }
                    }
                }
                CircuitOp::MulCt(i) => {
                    if ct.level() > 2 {
                        let other = ev.mod_switch_to(&cts[*i], ct.level());
                        ct = ev.mul_relin_rescale(&ct, &other, &keys.relin);
                        for (p, x) in plain.iter_mut().zip(&inputs[*i]) {
                            *p *= *x;
                        }
                        mults += 1;
                    }
                }
                CircuitOp::AddScalar(c) => {
                    ct = ev.add_scalar(&ct, *c);
                    for p in plain.iter_mut() {
                        *p += Complex::new(*c, 0.0);
                    }
                }
                CircuitOp::MulScalar(c) => {
                    if ct.level() > 2 {
                        ct = ev.rescale(&ev.mul_scalar(&ct, *c));
                        for p in plain.iter_mut() {
                            *p = p.scale(*c);
                        }
                        mults += 1;
                    }
                }
                CircuitOp::Rotate(r) => {
                    ct = ev.rotate(&ct, *r as isize, keys);
                    let rotated: Vec<Complex> =
                        (0..m).map(|j| plain[(j + r) % m]).collect();
                    plain = rotated;
                }
                CircuitOp::Square => {
                    if ct.level() > 2 {
                        ct = ev.rescale(&ev.square_relin(&ct, &keys.relin));
                        for p in plain.iter_mut() {
                            *p = *p * *p;
                        }
                        mults += 1;
                    }
                }
                CircuitOp::Negate => {
                    ct = ev.negate(&ct);
                    for p in plain.iter_mut() {
                        *p = -*p;
                    }
                }
            }
        }

        let out = enc.decode(&keys.secret.decrypt(&ct));
        // Values stay bounded by ~(1.5)^ops; tolerance scales with the
        // magnitude of the result and the multiplicative depth.
        let magnitude = plain.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
        let tol = 1e-4 * magnitude.max(1.0) * (mults as f64 + 1.0);
        for j in 0..m {
            let d = (out[j] - plain[j]).abs();
            prop_assert!(
                d < tol,
                "slot {j}: encrypted {} vs plain {} (diff {d:.2e}, tol {tol:.2e}, ops {:?})",
                out[j],
                plain[j],
                ops
            );
        }
    }
}
