//! Property tests: the PIM MMAC datapath (Montgomery, 28-bit primes) must
//! compute exactly what the host CKKS arithmetic computes, for every
//! Table II instruction — the functional half of the hardware model.

use anaheim::math::modulus::Modulus;
use anaheim::pim::isa::PimInstruction;
use anaheim::pim::mmac::PimUnit;
use proptest::prelude::*;

/// A 28-bit NTT-friendly prime (≡ 1 mod 2^17, §VI-A).
const Q: u32 = 268369921;

fn vecs(n: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..Q, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_instructions_match_host(a in vecs(16), b in vecs(16)) {
        let unit = PimUnit::new(Q, 16);
        let host = Modulus::new(Q as u64);
        for (instr, f) in [
            (PimInstruction::Add, &(|x: u64, y: u64| host.add(x, y)) as &dyn Fn(u64, u64) -> u64),
            (PimInstruction::Sub, &|x, y| host.sub(x, y)),
            (PimInstruction::Mult, &|x, y| host.mul(x, y)),
        ] {
            let out = unit.execute(instr, &[&a, &b], &[]);
            for i in 0..16 {
                prop_assert_eq!(out[0][i] as u64, f(a[i] as u64, b[i] as u64));
            }
        }
    }

    #[test]
    fn constant_instructions_match_host(a in vecs(16), c in 0u32..Q) {
        let unit = PimUnit::new(Q, 16);
        let host = Modulus::new(Q as u64);
        let cadd = unit.execute(PimInstruction::CAdd, &[&a], &[c]);
        let csub = unit.execute(PimInstruction::CSub, &[&a], &[c]);
        let cmul = unit.execute(PimInstruction::CMult, &[&a], &[c]);
        for i in 0..16 {
            prop_assert_eq!(cadd[0][i] as u64, host.add(a[i] as u64, c as u64));
            prop_assert_eq!(csub[0][i] as u64, host.sub(a[i] as u64, c as u64));
            prop_assert_eq!(cmul[0][i] as u64, host.mul(c as u64, a[i] as u64));
        }
    }

    #[test]
    fn mac_and_pmac_match_host(a in vecs(8), b in vecs(8), p in vecs(8),
                               c in vecs(8), d in vecs(8)) {
        let unit = PimUnit::new(Q, 16);
        let host = Modulus::new(Q as u64);
        let mac = unit.execute(PimInstruction::Mac, &[&a, &b, &c], &[]);
        let pmac = unit.execute(PimInstruction::PMac, &[&a, &b, &p, &c, &d], &[]);
        for i in 0..8 {
            prop_assert_eq!(
                mac[0][i] as u64,
                host.mul_add(a[i] as u64, b[i] as u64, c[i] as u64)
            );
            prop_assert_eq!(
                pmac[0][i] as u64,
                host.add(host.mul(a[i] as u64, p[i] as u64), c[i] as u64)
            );
            prop_assert_eq!(
                pmac[1][i] as u64,
                host.add(host.mul(b[i] as u64, p[i] as u64), d[i] as u64)
            );
        }
    }

    #[test]
    fn tensor_is_hmult_tensor_step(b1 in vecs(8), a1 in vecs(8),
                                   b2 in vecs(8), a2 in vecs(8)) {
        // Tensor must produce the (d0, d1, d2) of HMULT (§II-A).
        let unit = PimUnit::new(Q, 16);
        let host = Modulus::new(Q as u64);
        let out = unit.execute(PimInstruction::Tensor, &[&b1, &a1, &b2, &a2], &[]);
        for i in 0..8 {
            let d0 = host.mul(b1[i] as u64, b2[i] as u64);
            let d1 = host.add(
                host.mul(b1[i] as u64, a2[i] as u64),
                host.mul(a1[i] as u64, b2[i] as u64),
            );
            let d2 = host.mul(a1[i] as u64, a2[i] as u64);
            prop_assert_eq!(out[0][i] as u64, d0);
            prop_assert_eq!(out[1][i] as u64, d1);
            prop_assert_eq!(out[2][i] as u64, d2);
        }
    }

    #[test]
    fn paccum_is_keymult_inner_product(
        data in prop::collection::vec(vecs(8), 12)
    ) {
        // PAccum<4> must equal the Σ digit·evk inner product of KeyMult.
        let unit = PimUnit::new(Q, 16);
        let host = Modulus::new(Q as u64);
        let refs: Vec<&[u32]> = data.iter().map(|v| v.as_slice()).collect();
        let out = unit.execute(PimInstruction::PAccum(4), &refs, &[]);
        for i in 0..8 {
            let mut x = 0u64;
            let mut y = 0u64;
            for k in 0..4 {
                x = host.add(x, host.mul(data[k][i] as u64, data[8 + k][i] as u64));
                y = host.add(y, host.mul(data[4 + k][i] as u64, data[8 + k][i] as u64));
            }
            prop_assert_eq!(out[0][i] as u64, x);
            prop_assert_eq!(out[1][i] as u64, y);
        }
    }

    #[test]
    fn mod_down_epilogue_matches_host(a in vecs(8), b in vecs(8), c in 1u32..Q) {
        let unit = PimUnit::new(Q, 16);
        let host = Modulus::new(Q as u64);
        let out = unit.execute(PimInstruction::ModDownEp, &[&a, &b], &[c]);
        for i in 0..8 {
            prop_assert_eq!(
                out[0][i] as u64,
                host.mul(c as u64, host.sub(a[i] as u64, b[i] as u64))
            );
        }
    }
}

#[test]
fn pim_unit_processes_real_ciphertext_limbs() {
    // End-to-end plumbing: take limbs from an actual CKKS ciphertext
    // (reduced into a 28-bit prime), run HADD's element-wise addition on
    // the PIM unit, and check against the host addition.
    use anaheim::ckks::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let ctx = CkksContext::new(CkksParams::test_small());
    let mut rng = StdRng::seed_from_u64(81);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
    let enc = Encoder::new(&ctx);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(i as f64 * 1e-3, 0.0))
        .collect();
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);

    // Project limb 0 of both polys into the PIM word size.
    let to_u32 =
        |data: &[u64]| -> Vec<u32> { data.iter().map(|&x| (x % Q as u64) as u32).collect() };
    let b32 = to_u32(ct.b().limb(0).data());
    let a32 = to_u32(ct.a().limb(0).data());

    let unit = PimUnit::new(Q, 16);
    let out = unit.execute(PimInstruction::Add, &[&b32, &a32], &[]);
    let host = Modulus::new(Q as u64);
    for i in 0..b32.len() {
        assert_eq!(out[0][i] as u64, host.add(b32[i] as u64, a32[i] as u64));
    }
}
