//! Fuzz-style property tests for the ciphertext wire format (the
//! client/server trust boundary): truncated, bit-flipped, length-lying, or
//! outright random buffers must surface as a typed [`SerialError`] — never
//! a panic, and never a structurally inconsistent ciphertext.

use std::sync::OnceLock;

use anaheim::ckks::prelude::*;
use anaheim::ckks::serial::{
    deserialize_ciphertext, deserialize_plaintext, serialize_ciphertext, serialize_plaintext,
    SerialError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx() -> &'static CkksContext {
    static CTX: OnceLock<CkksContext> = OnceLock::new();
    CTX.get_or_init(|| CkksContext::new(CkksParams::test_small()))
}

/// One honestly-serialized ciphertext, shared across cases.
fn wire_ct() -> &'static [u8] {
    static WIRE: OnceLock<Vec<u8>> = OnceLock::new();
    WIRE.get_or_init(|| {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(2024);
        let keys = KeyGenerator::new(ctx, &mut rng).generate(&[]);
        let enc = Encoder::new(ctx);
        let msg: Vec<Complex> = (0..ctx.slots())
            .map(|i| Complex::new(i as f64 * 1e-3, 0.1))
            .collect();
        let ct = keys
            .public
            .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
        serialize_ciphertext(&ct)
    })
}

/// One honestly-serialized plaintext, shared across cases.
fn wire_pt() -> &'static [u8] {
    static WIRE: OnceLock<Vec<u8>> = OnceLock::new();
    WIRE.get_or_init(|| {
        let ctx = ctx();
        let enc = Encoder::new(ctx);
        let msg: Vec<Complex> = vec![Complex::new(0.25, -0.5); ctx.slots()];
        serialize_plaintext(&enc.encode(&msg, ctx.max_level()))
    })
}

/// On `Ok`, the result must at least be internally consistent and
/// re-serializable (the constructors assert this; reaching them with
/// inconsistent parts would have panicked already).
fn check_ct_outcome(r: Result<Ciphertext, SerialError>) {
    if let Ok(ct) = r {
        assert!(ct.level() >= 1);
        let _ = serialize_ciphertext(&ct);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_ciphertext_is_typed_truncation(cut in any::<usize>()) {
        let wire = wire_ct();
        let cut = cut % wire.len(); // strictly shorter than the full frame
        prop_assert_eq!(
            deserialize_ciphertext(ctx(), &wire[..cut]).unwrap_err(),
            SerialError::Truncated
        );
    }

    #[test]
    fn bit_flipped_ciphertext_never_panics(byte in any::<usize>(), bit in 0u8..8) {
        let mut wire = wire_ct().to_vec();
        let i = byte % wire.len();
        wire[i] ^= 1 << bit;
        check_ct_outcome(deserialize_ciphertext(ctx(), &wire));
    }

    #[test]
    fn burst_corruption_never_panics(
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 1..32),
    ) {
        let mut wire = wire_ct().to_vec();
        for (byte, bit) in flips {
            let i = byte % wire.len();
            wire[i] ^= 1 << bit;
        }
        check_ct_outcome(deserialize_ciphertext(ctx(), &wire));
    }

    #[test]
    fn length_lying_limb_count_is_rejected_or_consistent(lie in any::<u16>()) {
        // Offset of the first poly's limb-count field: magic(4) + version(2)
        // + kind(1) + log_n(1) + scale(8).
        let mut wire = wire_ct().to_vec();
        wire[16..18].copy_from_slice(&lie.to_le_bytes());
        let r = deserialize_ciphertext(ctx(), &wire);
        let true_limbs = ctx().max_level() as u16;
        if lie == 0 || lie > true_limbs {
            prop_assert!(r.is_err(), "impossible limb count {lie} must be rejected");
        }
        check_ct_outcome(r);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        check_ct_outcome(deserialize_ciphertext(ctx(), &bytes));
        let _ = deserialize_plaintext(ctx(), &bytes);
    }

    #[test]
    fn bit_flipped_plaintext_never_panics(byte in any::<usize>(), bit in 0u8..8) {
        let mut wire = wire_pt().to_vec();
        let i = byte % wire.len();
        wire[i] ^= 1 << bit;
        if let Ok(pt) = deserialize_plaintext(ctx(), &wire) {
            assert!(pt.level() >= 1);
            let _ = serialize_plaintext(&pt);
        }
    }
}

#[test]
fn scale_field_is_validated() {
    // A NaN / infinite / non-positive scale must be a typed error, not a
    // time bomb inside later arithmetic.
    for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
        let mut wire = wire_ct().to_vec();
        wire[8..16].copy_from_slice(&bad.to_le_bytes());
        assert_eq!(
            deserialize_ciphertext(ctx(), &wire).unwrap_err(),
            SerialError::InvalidScale,
            "scale {bad} must be rejected"
        );
    }
}

#[test]
fn format_byte_is_validated() {
    // Flipping the per-poly format byte to Coeff (or junk) must not reach
    // the asserting Ciphertext constructor.
    let wire = wire_ct();
    let fmt_off = 16 + 2; // after the first poly's limb count
    for v in [0u8, 2, 255] {
        let mut bad = wire.to_vec();
        bad[fmt_off] = v;
        assert_eq!(
            deserialize_ciphertext(ctx(), &bad).unwrap_err(),
            SerialError::BadHeader,
            "format byte {v} must be rejected"
        );
    }
}
