//! Telemetry determinism across thread counts.
//!
//! The observability layer records exclusively from virtual-time-ordered
//! serial code (the scheduler loop, the serving dispatch lane), stamping
//! spans from the simulation clock and ids from a seeded generator — never
//! from wall clock or thread identity. These tests pin the resulting
//! contract: the exported Chrome trace JSON and Prometheus text are
//! **byte-identical** for every `ANAHEIM_THREADS` value.

use anaheim::core::framework::{Anaheim, AnaheimConfig};
use anaheim::core::health::HealthRegistry;
use anaheim::core::telemetry::Telemetry;
use anaheim::serving::{Priority, Request, ServingConfig, ServingEngine};
use anaheim::workloads::{run_workload_traced, run_workload_with_health_traced, Workload};

/// Runs `f` under an explicit parpool width, restoring auto mode after.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    parpool::set_threads(n);
    let r = f();
    parpool::set_threads(0);
    r
}

fn boot_exports(threads: usize) -> (String, String) {
    with_threads(threads, || {
        let rt = Anaheim::new(AnaheimConfig::a100_near_bank());
        let mut tel = Telemetry::new(42);
        run_workload_traced(&rt, &Workload::boot(), &mut tel).expect("Boot runs");
        (tel.chrome_trace(), tel.prometheus())
    })
}

#[test]
fn bootstrap_trace_and_metrics_identical_across_thread_counts() {
    let (trace1, prom1) = boot_exports(1);
    let (trace8, prom8) = boot_exports(8);
    assert!(trace1.contains("\"traceEvents\""));
    assert!(prom1.contains("anaheim_kernels_total"));
    assert_eq!(trace1, trace8, "Chrome trace must not depend on threads");
    assert_eq!(prom1, prom8, "metrics must not depend on threads");
}

fn pipelined_boot_exports(threads: usize) -> (String, String) {
    with_threads(threads, || {
        use anaheim::core::schedule::ScheduleMode;
        let rt = Anaheim::new(
            AnaheimConfig::a100_near_bank().with_schedule_mode(ScheduleMode::Pipelined),
        );
        let mut tel = Telemetry::new(42);
        run_workload_traced(&rt, &Workload::boot(), &mut tel).expect("Boot runs");
        (tel.chrome_trace(), tel.prometheus())
    })
}

#[test]
fn pipelined_trace_and_metrics_identical_across_thread_counts() {
    // The pipelined scheduler issues in serial program order and only the
    // virtual stream cursors differ from serial mode, so its stream-segment
    // spans and overlap gauge obey the same byte-identity contract.
    let (trace1, prom1) = pipelined_boot_exports(1);
    let (trace8, prom8) = pipelined_boot_exports(8);
    assert!(trace1.contains("gpu-stream") && trace1.contains("pim-stream"));
    assert!(prom1.contains("anaheim_stream_overlap_ns"));
    assert_eq!(trace1, trace8, "pipelined trace must not depend on threads");
    assert_eq!(prom1, prom8, "pipelined metrics must not depend on threads");
}

fn health_exports(threads: usize) -> (String, String) {
    with_threads(threads, || {
        let cfg = AnaheimConfig::a100_near_bank();
        let mut reg = HealthRegistry::for_device(
            cfg.pim.as_ref().expect("near-bank has PIM"),
            Default::default(),
        );
        let rt = Anaheim::new(cfg);
        let mut tel = Telemetry::new(7);
        run_workload_with_health_traced(&rt, &Workload::helr(), &mut reg, &mut tel)
            .expect("HELR runs");
        (tel.chrome_trace(), tel.prometheus())
    })
}

#[test]
fn health_gated_trace_identical_across_thread_counts() {
    let a = health_exports(1);
    let b = health_exports(8);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

fn serving_exports(threads: usize) -> (String, String) {
    with_threads(threads, || {
        use anaheim::core::build::{Builder, LinTransStyle};
        use anaheim::core::params::ParamSet;
        let trace: Vec<Request> = (0..6)
            .map(|i| {
                let mut b = Builder::new(ParamSet::paper_default());
                Request {
                    id: i,
                    tenant: (i % 2) as u32,
                    priority: if i % 3 == 0 {
                        Priority::Interactive
                    } else {
                        Priority::Standard
                    },
                    arrival_ns: i as f64 * 5e4,
                    deadline_ns: 1e12,
                    seq: std::sync::Arc::new(b.lintrans(24, 4, LinTransStyle::Hoisting, true)),
                    fault: None,
                    label: "lintrans",
                }
            })
            .collect();
        let mut engine = ServingEngine::new(ServingConfig::a100_default(7));
        let mut tel = Telemetry::new(7);
        engine.run_trace_traced(&trace, &mut tel).expect("serves");
        (tel.chrome_trace(), tel.prometheus())
    })
}

#[test]
fn serving_trace_identical_across_thread_counts() {
    // The serving engine prepares requests in parallel (the only
    // multi-threaded stage) and records only on the serial dispatch lane.
    let a = serving_exports(1);
    let b = serving_exports(8);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
