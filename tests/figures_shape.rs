//! Integration shape tests: the quantitative targets of DESIGN.md §4,
//! asserted on the regenerated figures. These are the "does the
//! reproduction tell the paper's story" checks.

use anaheim_bench::figures::*;

#[test]
fn fig2b_elementwise_shares() {
    // Paper: element-wise ops are 45–48% of bootstrapping on the A100 and
    // 68–69% on the RTX 4090, at every D (Fig. 2b).
    for r in fig2b() {
        if r.t_boot_eff_ms.is_none() {
            continue;
        }
        match r.gpu {
            "A100 80GB" => assert!(
                (0.30..0.60).contains(&r.elementwise_share),
                "A100 D={}: {:.0}%",
                r.d,
                100.0 * r.elementwise_share
            ),
            _ => assert!(
                (0.55..0.85).contains(&r.elementwise_share),
                "4090 D={}: {:.0}%",
                r.d,
                100.0 * r.elementwise_share
            ),
        }
    }
}

#[test]
fn fig2c_hoisting_wins_on_gpu() {
    // §III-C / Fig. 2c: hoisting beats both Base and MinKS on GPUs.
    let rows = fig2c();
    let t = |name: &str| {
        rows.iter()
            .find(|r| r.algorithm == name)
            .expect("row")
            .t_boot_eff_ms
    };
    assert!(t("Hoist") < t("Base"), "hoist must beat base");
    assert!(t("Hoist") < t("MinKS"), "hoist must beat MinKS on GPUs");
    // And hoisting raises the element-wise share (§IV-B).
    let share = |name: &str| {
        rows.iter()
            .find(|r| r.algorithm == name)
            .expect("row")
            .elementwise_share
    };
    assert!(share("Hoist") > share("MinKS"));
}

#[test]
fn fig4a_ordering() {
    // Fig. 4a: PIM < 4×BW < baseline on the linear transform, and the
    // 4×BW case barely helps ModSwitch while PIM matches it on EW.
    let reports = fig4a();
    let t = |name: &str| {
        reports
            .iter()
            .find(|(n, _)| n.contains(name))
            .expect("report")
            .1
            .total_ns
    };
    let base = t("GPU only");
    let bw4 = t("4x BW");
    let pim = t("near-bank");
    assert!(bw4 < base, "4x bandwidth must help");
    assert!(pim < base, "PIM must help");
    // PIM achieves a similar order of benefit to 4×BW without the
    // unrealistic bus (§V-A).
    let ratio = pim / bw4;
    assert!(
        (0.5..1.6).contains(&ratio),
        "PIM should land near the 4x-BW point: {ratio:.2}"
    );
}

#[test]
fn fig4b_traffic_and_energy_reductions() {
    let rows = fig4b();
    let base = &rows[0];
    let pim = &rows[1];
    let ideal = &rows[2];
    // Paper: 37 GB baseline → ~6 GB with PIM (6.15×); we require ≥ 2.5×
    // and the right ordering, with the ideal case below PIM.
    assert!(
        (25.0..50.0).contains(&base.gpu_dram_gb),
        "baseline bootstrap DRAM ≈ 37 GB, got {:.1}",
        base.gpu_dram_gb
    );
    let reduction = base.gpu_dram_gb / pim.gpu_dram_gb;
    assert!(
        reduction > 2.5,
        "PIM must slash GPU-side DRAM (paper 6.15×): {reduction:.2}"
    );
    assert!(ideal.gpu_dram_gb < pim.gpu_dram_gb);
    // DRAM energy: PIM's internal accesses are cheap, so total DRAM energy
    // drops despite more bytes moved (paper 2.87×).
    assert!(
        pim.dram_energy_j < base.dram_energy_j,
        "PIM DRAM energy must drop: {} vs {}",
        pim.dram_energy_j,
        base.dram_energy_j
    );
}

#[test]
fn fig8_bands() {
    let rows = fig8();
    for r in &rows {
        match r.speedup {
            None => assert!(
                r.workload.starts_with("ResNet") && r.config.contains("4090"),
                "only ResNets on the 4090 may OoM: {} on {}",
                r.workload,
                r.config
            ),
            Some(s) => {
                assert!(
                    (1.02..2.5).contains(&s),
                    "{} on {}: speedup {s:.2} out of band",
                    r.workload,
                    r.config
                );
                let edp = r.edp_gain.expect("edp");
                assert!(
                    (1.25..3.5).contains(&edp),
                    "{} on {}: EDP gain {edp:.2} out of band (paper 1.62-3.14)",
                    r.workload,
                    r.config
                );
            }
        }
    }
    // Custom-HBM trails near-bank slightly on the A100 (§VII-B).
    let s = |wl: &str, cfg: &str| {
        rows.iter()
            .find(|r| r.workload == wl && r.config.contains(cfg))
            .and_then(|r| r.speedup)
            .expect("speedup")
    };
    assert!(s("Boot", "near-bank PIM") >= s("Boot", "custom-HBM"));
    let gap = s("Boot", "near-bank PIM") / s("Boot", "custom-HBM");
    assert!(
        gap < 1.25,
        "custom-HBM only slightly lower (§VII-B): {gap:.2}"
    );
}

#[test]
fn fig10_ablation_shape() {
    let rows = fig10();
    let t = |wl: &str, cfg: &str| {
        rows.iter()
            .find(|r| r.workload == wl && r.config == cfg)
            .and_then(|r| r.time_ms)
            .expect("time")
    };
    for wl in ["Boot", "HELR"] {
        // Fusions monotonically help on both sides.
        assert!(t(wl, "+BasicFuse (GPU)") <= t(wl, "Base (GPU)"), "{wl}");
        assert!(
            t(wl, "+ExtraFuse (GPU)") <= t(wl, "+BasicFuse (GPU)"),
            "{wl}"
        );
        assert!(t(wl, "PIM +BasicFuse") <= t(wl, "PIM-Base"), "{wl}");
        // The full PIM configuration beats the strongest GPU baseline.
        assert!(t(wl, "PIM +AutFuse") < t(wl, "+ExtraFuse (GPU)"), "{wl}");
        // w/o CP loses most of the PIM benefit (paper: ~2.2× slower EW).
        assert!(t(wl, "PIM w/o CP") > t(wl, "PIM +AutFuse"), "{wl}");
    }
    // Element-wise slowdown without column partitioning, geometric mean
    // across workloads (paper: 2.24× on A100).
    let mut ratios = Vec::new();
    for wl in ["Boot", "HELR", "Sort", "RNN"] {
        let ew = |cfg: &str| {
            rows.iter()
                .find(|r| r.workload == wl && r.config == cfg)
                .and_then(|r| r.elementwise_ms)
                .expect("ew")
        };
        ratios.push(ew("PIM w/o CP") / ew("PIM +AutFuse"));
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        (1.5..4.0).contains(&geomean),
        "w/o-CP element-wise slowdown ≈ 2.2× (paper), got {geomean:.2}"
    );
}

#[test]
fn table5_anaheim_vs_literature() {
    let rows = table5();
    let ours_boot = rows
        .iter()
        .find(|r| r.measured && r.system.contains("A100 + near-bank"))
        .and_then(|r| r.boot_ms)
        .expect("our boot");
    // Paper Table V: Anaheim (A100) Boot = 29.3 ms. Shape requirements:
    // faster than all GPU/FPGA rows, slower than the big ASICs.
    for r in &rows {
        if r.measured {
            continue;
        }
        if let Some(b) = r.boot_ms {
            match r.system {
                "100x (V100)" | "TensorFHE (A100)" | "FAB (FPGA)" | "Poseidon (FPGA)" => {
                    assert!(
                        ours_boot < b,
                        "must beat {}: {ours_boot:.1} vs {b}",
                        r.system
                    )
                }
                "ARK (ASIC)" | "SHARP (ASIC)" | "CraterLake (ASIC)" => {
                    assert!(
                        ours_boot > b,
                        "ASICs stay ahead ({}): {ours_boot:.1} vs {b}",
                        r.system
                    )
                }
                _ => {}
            }
        }
    }
    // Within ~2× of the paper's reported 29.3 ms absolute.
    assert!(
        (15.0..60.0).contains(&ours_boot),
        "Boot ≈ 29.3 ms (paper), got {ours_boot:.1}"
    );
}

#[test]
fn minks_wins_only_on_asic_like_hardware() {
    // §III-C: MinKS beats hoisting only with hundreds of MB of on-chip
    // cache (the evk gets reused from SRAM) and high compute throughput;
    // on GPUs hoisting wins. Both halves of the claim, from one model.
    use anaheim::core::build::{Builder, LinTransStyle};
    use anaheim::core::framework::{Anaheim, AnaheimConfig, ExecMode};
    use anaheim::core::health::RetryPolicy;
    use anaheim::core::params::ParamSet;
    use anaheim::core::passes::FusionConfig;
    use anaheim::core::schedule::{ScheduleMode, MAX_PIM_RETRIES};
    use anaheim::gpu::config::{GpuConfig, LibraryProfile};
    use anaheim::pim::layout::LayoutPolicy;

    let params = ParamSet::paper_default();
    let k = 16;
    let build = |style, reorder| {
        let mut b = Builder::new(params.clone());
        // Several transforms back-to-back so evk reuse across transforms
        // matters (the CoeffToSlot setting of Fig. 1).
        let mut seq = b.lintrans(params.l_max, k, style, reorder);
        for _ in 0..3 {
            let t = b.lintrans(params.l_max, k, style, reorder);
            seq.keyswitches += t.keyswitches;
            seq.ops.extend(t.ops);
        }
        seq
    };
    let run = |gpu: GpuConfig, style, reorder| {
        let cfg = AnaheimConfig {
            name: "probe",
            gpu,
            library: LibraryProfile::cheddar(),
            pim: None,
            layout: LayoutPolicy::ColumnPartitioned,
            fusion: FusionConfig::gpu_baseline(),
            mode: ExecMode::GpuOnly,
            fault: None,
            retry: RetryPolicy::fixed(MAX_PIM_RETRIES),
            schedule: ScheduleMode::Serial,
        };
        Anaheim::new(cfg)
            .run(build(style, reorder))
            .expect("preset config runs")
            .total_ns
    };

    // On the A100: hoisting clearly beats MinKS (Fig. 2c).
    let gpu_hoist = run(GpuConfig::a100_80gb(), LinTransStyle::Hoisting, true);
    let gpu_minks = run(GpuConfig::a100_80gb(), LinTransStyle::MinKS, false);
    assert!(
        gpu_hoist < gpu_minks,
        "hoisting must win on the GPU: {:.1} vs {:.1} µs",
        gpu_hoist / 1e3,
        gpu_minks / 1e3
    );

    // On the ASIC-like design point: the 512 MB cache turns every evk_1
    // re-read into a hit and the compute throughput absorbs the extra
    // ModSwitches — MinKS wins (§III-C).
    let asic_hoist = run(GpuConfig::asic_like(), LinTransStyle::Hoisting, true);
    let asic_minks = run(GpuConfig::asic_like(), LinTransStyle::MinKS, false);
    assert!(
        asic_minks < asic_hoist,
        "MinKS must win on ASIC-like hardware: {:.1} vs {:.1} µs",
        asic_minks / 1e3,
        asic_hoist / 1e3
    );
}

#[test]
fn pipelining_gains_would_be_marginal() {
    // §V-C "(No) pipelining": after PIM offload, element-wise time is a
    // small share, so even perfect GPU/PIM overlap buys little — the
    // paper's justification for the simpler non-pipelined design.
    use anaheim::core::build::Builder;
    use anaheim::core::framework::{Anaheim, AnaheimConfig};
    use anaheim::core::params::ParamSet;

    let mut b = Builder::new(ParamSet::paper_default());
    let seq = b.bootstrap();
    let r = Anaheim::new(AnaheimConfig::a100_near_bank())
        .run(seq)
        .expect("preset config runs");
    let headroom = r.pipelining_headroom();
    assert!(
        headroom < 1.35,
        "pipelining headroom must be marginal (§V-C): {headroom:.2}x"
    );
    assert!(headroom >= 1.0);
}
