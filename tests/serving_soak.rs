//! Acceptance tests for the deadline-aware serving layer (DESIGN.md,
//! "Serving & degradation"): a seeded chaos soak over ≥200 mixed-workload
//! requests completes with every invariant intact, overload sheds with
//! typed rejections instead of stalling, and the whole run — responses,
//! health snapshot, and breaker transition log — is bit-identical across
//! `ANAHEIM_THREADS` settings. The fleet tests hold the same bar for the
//! sharded streaming soak: failover fires (a shard drains, its tenants
//! re-route, a probe re-admits it) and the per-shard snapshot text is
//! byte-identical across thread counts.

use anaheim::serving::soak::{check_invariants, run_soak, run_soak_stream, SoakConfig};
use anaheim::serving::{Outcome, Rejected, ShardState};

#[test]
fn chaos_soak_over_200_requests_holds_all_invariants() {
    let cfg = SoakConfig::chaos(2024);
    assert!(cfg.requests >= 200, "acceptance floor is 200 requests");

    let out = run_soak(&cfg).expect("chaos soak must not error out");
    let summary = check_invariants(&cfg, &out).expect("soak invariants");

    // Every response is an honest, typed outcome; in particular no request
    // that expired returns Ok (check_invariants proves it, but the claim
    // is the acceptance criterion, so spell it out).
    for r in &out.responses {
        if let Outcome::Completed {
            finish_ns,
            deadline_ns,
            ..
        } = r.outcome
        {
            assert!(
                finish_ns <= deadline_ns,
                "request {} completed past its deadline",
                r.id
            );
        }
    }

    // The chaos schedule actually bites: faults absorbed, breakers
    // exercised, and the stuck-lane window kills exactly one bank domain
    // while the fleet keeps serving.
    assert!(summary.completed > 0);
    assert!(summary.faults > 0, "fault storms must fire");
    assert!(summary.transitions > 0, "breakers must cycle");
    assert_eq!(summary.dead_banks, 1, "the stuck lane kills one domain");
    assert!(
        out.snapshot.open_banks() < out.snapshot.banks.len(),
        "a sick bank must never take the whole fleet down"
    );
}

#[test]
fn sustained_overload_sheds_with_typed_rejections() {
    // Crank arrival pressure far past capacity: admission control must
    // answer every request — completions for what fits, typed rejections
    // for what doesn't — and the queue bound must hold throughout.
    let cfg = SoakConfig {
        arrival_factor: 0.05,
        ..SoakConfig::clean(11)
    };
    let out = run_soak(&cfg).expect("overload must shed, not fail");
    let summary = check_invariants(&cfg, &out).expect("soak invariants");
    assert!(
        summary.shed_queue_full + summary.shed_infeasible > 0,
        "overload must shed"
    );
    let typed_sheds = out
        .responses
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                Outcome::Rejected(Rejected::QueueFull)
                    | Outcome::Rejected(Rejected::DeadlineInfeasible)
            )
        })
        .count() as u64;
    assert_eq!(
        typed_sheds,
        summary.shed_queue_full + summary.shed_infeasible
    );
    assert!(
        out.snapshot.counters.max_queue_depth <= cfg.queue_capacity as u64,
        "backpressure must respect the queue bound"
    );
}

#[test]
fn soak_outcome_is_bit_identical_across_thread_counts() {
    // Same fault seed + trace ⇒ identical responses, identical health
    // snapshot, and an identical breaker transition log, whether request
    // preparation runs on 1 worker thread or 8. This is the determinism
    // contract that makes chaos runs reproducible in CI.
    let cfg = SoakConfig::chaos(77);
    let mut outcomes = Vec::new();
    for threads in [1usize, 8] {
        parpool::set_threads(threads);
        outcomes.push((threads, run_soak(&cfg).expect("soak runs")));
    }
    parpool::set_threads(0);

    let (_, baseline) = &outcomes[0];
    check_invariants(&cfg, baseline).expect("soak invariants");
    for (threads, out) in &outcomes[1..] {
        assert_eq!(
            out.responses, baseline.responses,
            "responses differ at {threads} thread(s)"
        );
        assert_eq!(
            out.snapshot, baseline.snapshot,
            "health snapshot differs at {threads} thread(s)"
        );
        assert_eq!(
            out.transitions, baseline.transitions,
            "breaker transition log differs at {threads} thread(s)"
        );
        assert_eq!(out, baseline, "soak outcome depends on thread count");
    }
}

/// The CI fleet configuration at a request count that keeps the test fast
/// (`scripts/check.sh` runs the full million-request gate).
fn fleet_cfg() -> SoakConfig {
    SoakConfig {
        requests: 2_000,
        ..SoakConfig::fleet_chaos(2024)
    }
}

#[test]
fn fleet_stream_soak_fails_over_and_recovers() {
    let cfg = fleet_cfg();
    let out = run_soak_stream(&cfg, None).expect("fleet soak invariants");
    let s = &out.summary;

    // The shard storm actually bites and failover runs its full cycle:
    // at least one shard drains, its tenants land elsewhere as honest
    // Rerouted outcomes, and a probe brings the shard back up.
    assert!(s.completed > 0, "the fleet must keep serving");
    assert!(s.drains >= 1, "the storm must drain a shard");
    assert!(s.readmits >= 1, "a drained shard must re-admit");
    assert!(s.rerouted >= 1, "drained tenants must be re-routed");
    assert!(s.faults > 0, "fault storms must fire");

    // Recovery is visible in the lifecycle log: some shard walked
    // draining → cooling → probation and back to up via a good probe.
    assert_eq!(out.snapshots.len(), cfg.shards as usize);
    assert!(
        out.snapshots
            .iter()
            .any(|sn| sn.transitions.iter().any(|t| t.cause == "probe-ok")),
        "at least one probe must succeed"
    );
    // Every shard ends the run serving again — no shard is wedged in a
    // drain it never leaves.
    for sn in &out.snapshots {
        assert_eq!(sn.state, ShardState::Up, "shard {} stuck", sn.shard);
    }
}

#[test]
fn fleet_stream_soak_is_bit_identical_across_thread_counts() {
    // The sharded streaming path keeps the same determinism contract as
    // the batch soak: all routing, breaker, and lifecycle decisions run
    // on serial virtual-time lanes, so the rendered per-shard snapshot
    // text — the artifact scripts/check.sh byte-compares — cannot depend
    // on `ANAHEIM_THREADS`.
    let cfg = fleet_cfg();
    let mut outcomes = Vec::new();
    for threads in [1usize, 8] {
        parpool::set_threads(threads);
        outcomes.push((threads, run_soak_stream(&cfg, None).expect("fleet soak")));
    }
    parpool::set_threads(0);

    let (_, baseline) = &outcomes[0];
    for (threads, out) in &outcomes[1..] {
        assert_eq!(
            out.summary, baseline.summary,
            "stream summary differs at {threads} thread(s)"
        );
        assert_eq!(
            out.snapshot_text, baseline.snapshot_text,
            "snapshot text differs at {threads} thread(s)"
        );
        assert_eq!(
            out.snapshots, baseline.snapshots,
            "shard snapshots differ at {threads} thread(s)"
        );
    }
}
