//! The full robustness loop, end to end: an injected PIM bank fault is
//! caught by the residue checksum, the block is re-executed on the trusted
//! (GPU) path, the workload completes with correct values, and the
//! execution report records the degradation — the acceptance scenario of
//! the reliability design (DESIGN.md, "Reliability & fault model" and
//! "Serving & degradation").

use anaheim::core::framework::{Anaheim, AnaheimConfig};
use anaheim::core::health::{BreakerState, HealthRegistry};
use anaheim::core::schedule::MAX_PIM_RETRIES;
use anaheim::pim::bankexec::{alloc_paccum_groups, paccum_alg1_verified, ELEMS_PER_CHUNK};
use anaheim::pim::{
    FaultInjector, FaultPlan, LayoutPolicy, MontgomeryCtx, PimError, PimInstruction, PimUnit,
    PolyGroupAllocator, SimulatedBank,
};
use anaheim::workloads::catalog::Workload;
use anaheim::workloads::runner::run_workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const Q: u32 = 268369921;

fn random_poly(c: usize, rng: &mut StdRng) -> Vec<u32> {
    (0..c * ELEMS_PER_CHUNK)
        .map(|_| rng.gen_range(0..Q))
        .collect()
}

#[test]
fn bank_fault_is_detected_and_gpu_reexecution_recovers() {
    // --- Functional half of the loop: data goes through the simulated
    // bank, a cell bit flips, the post-kernel checksum catches it, and the
    // trusted path recomputes the correct answer from pristine inputs.
    let (k, c, b) = (4usize, 16usize, 16usize);
    let mut rng = StdRng::seed_from_u64(301);
    let ps: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
    let aas: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
    let bs: Vec<Vec<u32>> = (0..k).map(|_| random_poly(c, &mut rng)).collect();
    let mont = MontgomeryCtx::new(Q);

    let store_all = |bank: &mut SimulatedBank, pg_p: &_, pg_ab: &_| {
        for i in 0..k {
            bank.store_poly(pg_p, i, &ps[i]).unwrap();
            bank.store_poly(pg_ab, 2 * i, &aas[i]).unwrap();
            bank.store_poly(pg_ab, 2 * i + 1, &bs[i]).unwrap();
        }
    };

    // 1) Fault-free run: the golden outputs.
    let mut alloc = PolyGroupAllocator::new(32, 64, LayoutPolicy::ColumnPartitioned);
    let (pg_p, pg_ab, pg_out) = alloc_paccum_groups(&mut alloc, k, c);
    let mut bank = SimulatedBank::new(64, 32);
    store_all(&mut bank, &pg_p, &pg_ab);
    paccum_alg1_verified(&mut bank, &mont, k, b, &pg_p, &pg_ab, &pg_out, None)
        .expect("clean run passes its own integrity check");
    let golden = (bank.load_poly(&pg_out, 0), bank.load_poly(&pg_out, 1));

    // 2) Faulty run: a guaranteed bank bit flip must be *detected*, not
    // silently returned.
    let mut bank = SimulatedBank::new(64, 32);
    store_all(&mut bank, &pg_p, &pg_ab);
    let mut inj = FaultInjector::new(FaultPlan::none().with_seed(7).with_bank_flips(1.0));
    let err = paccum_alg1_verified(
        &mut bank,
        &mont,
        k,
        b,
        &pg_p,
        &pg_ab,
        &pg_out,
        Some(&mut inj),
    )
    .expect_err("an injected bit flip must trip the integrity check");
    match err {
        PimError::IntegrityViolation(report) => {
            assert!(report.bit_flips > 0, "the flip must be attributed");
            assert!(!report.is_permanent(), "a bit flip is transient");
        }
        other => panic!("expected IntegrityViolation, got {other}"),
    }

    // 3) Recovery: the GPU path recomputes from its own pristine copy.
    let unit = PimUnit::new(Q, 32);
    let mut refs: Vec<&[u32]> = Vec::new();
    refs.extend(aas.iter().map(|v| v.as_slice()));
    refs.extend(bs.iter().map(|v| v.as_slice()));
    refs.extend(ps.iter().map(|v| v.as_slice()));
    let recovered = unit.execute(PimInstruction::PAccum(k), &refs, &[]);
    assert_eq!(
        recovered[0], golden.0,
        "GPU re-execution must match golden x"
    );
    assert_eq!(
        recovered[1], golden.1,
        "GPU re-execution must match golden y"
    );
}

#[test]
fn degraded_workload_completes_and_reports_retries() {
    // --- Scheduler half of the loop: the same fault class at the platform
    // level. Every PIM attempt faults (p = 1), so each kernel burns its
    // retries and lands on the GPU; the workload still completes and the
    // report itemizes the degradation.
    let plan = FaultPlan::none().with_seed(41).with_bank_flips(1.0);
    let rt = Anaheim::new(AnaheimConfig::a100_near_bank().with_fault_plan(plan));
    let w = Workload::boot();
    let r = run_workload(&rt, &w).expect("degraded runs must still complete");
    let nums = r.outcome.expect("Boot fits on the A100");

    assert!(nums.faults_detected > 0, "faults at p=1 must be detected");
    assert!(nums.pim_retries > 0, "transient faults must be retried");
    assert!(nums.degraded_segments > 0, "degradation must be recorded");
    // Each kernel takes 1 + MAX_PIM_RETRIES faulty PIM attempts.
    assert_eq!(
        nums.faults_detected,
        nums.pim_retries / MAX_PIM_RETRIES as u64 * (1 + MAX_PIM_RETRIES as u64),
        "retry accounting must be consistent"
    );

    // Degradation costs time but never correctness or completion: the
    // degraded run is strictly slower than the clean one, and slower than
    // the GPU-only baseline it falls back to (wasted PIM attempts are paid).
    let clean = run_workload(&Anaheim::new(AnaheimConfig::a100_near_bank()), &w)
        .unwrap()
        .outcome
        .unwrap();
    let gpu_only = run_workload(&Anaheim::new(AnaheimConfig::a100_baseline()), &w)
        .unwrap()
        .outcome
        .unwrap();
    assert_eq!(clean.faults_detected, 0);
    assert!(nums.time_ms > clean.time_ms, "faults must cost time");
    assert!(
        nums.time_ms > gpu_only.time_ms,
        "wasted PIM attempts make degraded mode slower than never offloading"
    );
}

#[test]
fn degraded_platform_still_serves_correct_decrypted_values() {
    // --- Serving-stack view: while the platform model degrades under
    // faults (timing, energy, report), the cryptographic pipeline the
    // client sees still decrypts to the right values — degradation is a
    // performance event, never a correctness event.
    use anaheim::ckks::prelude::*;
    use anaheim::ckks::serial::{deserialize_ciphertext, serialize_ciphertext};

    let plan = FaultPlan::none().with_seed(43).with_bank_flips(0.5);
    let rt = Anaheim::new(AnaheimConfig::a100_near_bank().with_fault_plan(plan));
    let report = run_workload(&rt, &Workload::boot())
        .expect("degraded runs complete")
        .outcome
        .expect("Boot fits");
    assert!(
        report.degraded_segments > 0,
        "this run must actually degrade"
    );

    let ctx = CkksContext::new(CkksParams::test_small());
    let mut rng = StdRng::seed_from_u64(303);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
    let enc = Encoder::new(&ctx);
    let vals: Vec<f64> = (0..ctx.slots())
        .map(|i| 0.4 - (i % 5) as f64 * 0.1)
        .collect();
    let msg: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
    let wire = serialize_ciphertext(&ct);

    // Server: square under the noise guard, ship back.
    let received = deserialize_ciphertext(&ctx, &wire).expect("valid wire");
    let gv = GuardedEvaluator::new(&ctx, 8.0);
    let t = gv.track_fresh(received, 0.4);
    let squared = gv
        .square_rescale(&t, &keys.relin)
        .expect("budget allows depth 1");
    let reply = serialize_ciphertext(&squared.ct);

    // Client: the decrypted values are correct.
    let back = deserialize_ciphertext(&ctx, &reply).expect("valid reply");
    let out = enc.decode(&keys.secret.decrypt(&back));
    for (j, &v) in vals.iter().enumerate() {
        assert!(
            (out[j].re - v * v).abs() < 1e-3,
            "slot {j}: want {}, got {}",
            v * v,
            out[j].re
        );
    }
}

#[test]
fn stuck_lane_trips_breaker_and_soak_completes_on_gpu() {
    // --- Breaker-aware soak: a *persistent* hard fault (stuck MMAC lane)
    // must not burn retries forever. Under `run_with_health`, the owning
    // bank domain's breaker opens permanently after the failure threshold,
    // later kernels route straight to the GPU, and every other domain
    // stays closed — a sick bank degrades throughput, never availability.
    use anaheim::workloads::runner::run_workload_with_health;

    let plan = FaultPlan::none().with_seed(53).with_stuck_lane(2);
    let cfg = AnaheimConfig::a100_near_bank().with_fault_plan(plan);
    let mut reg = HealthRegistry::for_device(
        cfg.pim.as_ref().expect("near-bank platform has PIM"),
        Default::default(),
    );
    let rt = Anaheim::new(cfg);

    // Soak the registry across a whole multi-segment workload: the trip
    // happens early and the rest of the run rides the open breaker.
    let w = Workload::helr();
    let nums = run_workload_with_health(&rt, &w, &mut reg)
        .expect("a stuck lane must degrade, not abort")
        .outcome
        .expect("HELR fits on the A100");

    let snap = reg.snapshot();
    let sick: Vec<_> = snap
        .banks
        .iter()
        .filter(|b| b.state == BreakerState::Open)
        .collect();
    assert_eq!(sick.len(), 1, "exactly the owning domain opens");
    assert!(sick[0].permanent, "a hard fault opens the breaker for good");
    assert!(
        snap.banks
            .iter()
            .filter(|b| b.bank != sick[0].bank)
            .all(|b| b.state == BreakerState::Closed && b.trips == 0),
        "healthy domains must be untouched"
    );

    // The trip is visible in the log (closed -> open, attributed to the
    // stuck lane) and the run completed degraded, not dead.
    let trip = reg
        .transitions()
        .iter()
        .find(|t| t.to == BreakerState::Open)
        .expect("the trip must be logged");
    assert_eq!(trip.bank, sick[0].bank);
    assert_eq!(trip.cause, "stuck-lane");
    assert!(nums.breaker_skips > 0, "open breaker must be routed around");
    assert!(
        nums.pim_retries == 0,
        "hard faults must not be retried on the sick bank"
    );
    assert!(nums.time_ms > 0.0 && nums.time_ms.is_finite());

    // The clean share of the fleet keeps earning its keep: the degraded
    // near-bank run still beats the GPU-only baseline.
    let gpu_only = run_workload(&Anaheim::new(AnaheimConfig::a100_baseline()), &w)
        .unwrap()
        .outcome
        .unwrap();
    assert!(
        nums.time_ms < gpu_only.time_ms * 1.2,
        "one sick bank of several must not erase the PIM win: degraded {} ms vs GPU-only {} ms",
        nums.time_ms,
        gpu_only.time_ms
    );
}

#[test]
fn same_seed_and_plan_give_byte_identical_reports() {
    // Determinism regression: fault injection is seeded, so two runs with
    // the same plan must agree to the last field — the property that makes
    // fault scenarios reproducible in CI.
    let plan = FaultPlan::none()
        .with_seed(97)
        .with_bank_flips(0.3)
        .with_cmd_drops(0.1);
    let mut b =
        anaheim::core::build::Builder::new(anaheim::core::params::ParamSet::paper_default());
    let seq = b.bootstrap();
    let run = || {
        Anaheim::new(AnaheimConfig::a100_near_bank().with_fault_plan(plan))
            .run(seq.clone())
            .expect("degraded runs complete")
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(
        format!("{r1:?}"),
        format!("{r2:?}"),
        "same seed + plan must reproduce the exact report"
    );
    assert!(r1.faults_detected > 0, "the plan must actually fire");
}
