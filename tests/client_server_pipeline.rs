//! End-to-end client/server scenario across the serialization boundary:
//! the deployment story FHE exists for (§I). The client encrypts and ships
//! bytes; the server — holding only evaluation keys — computes a small
//! private-inference pipeline (linear layer + polynomial activation +
//! aggregation) on ciphertext bytes and ships bytes back; the client
//! decrypts.

use anaheim::ckks::lintrans::LinearTransform;
use anaheim::ckks::polyeval::PowerSeries;
use anaheim::ckks::prelude::*;
use anaheim::ckks::serial::{deserialize_ciphertext, serialize_ciphertext, SerialError};
use anaheim::ckks::slots::{sum_block, sum_block_rotations};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn context() -> CkksContext {
    CkksContext::new(
        CkksParams::builder()
            .log_n(10)
            .levels(8)
            .alpha(2)
            .scale_bits(40)
            .build(),
    )
}

#[test]
fn private_inference_round_trip() {
    let ctx = context();
    let mut rng = StdRng::seed_from_u64(1001);

    // --- Client side: keys, data, encryption, serialization.
    let mut rots = vec![0isize; 0];
    rots.extend([1isize, 2, 3]);
    rots.extend(sum_block_rotations(16));
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&rots);
    let enc = Encoder::new(&ctx);
    let m = ctx.slots();
    let mut rng2 = StdRng::seed_from_u64(1002);
    let x: Vec<f64> = (0..m).map(|_| rng2.gen_range(-0.4..0.4)).collect();
    let msg: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
    let wire: Vec<u8> = serialize_ciphertext(&ct);
    assert!(wire.len() > 1000, "a real ciphertext is not tiny");

    // --- Server side: deserialize, compute, serialize.
    // (The server shares the public context and evaluation keys only.)
    let received = deserialize_ciphertext(&ctx, &wire).expect("valid wire format");
    let ev = Evaluator::new(&ctx);

    // 1. A small linear layer: y = W·x as a 3-diagonal transform.
    let mut w = LinearTransform::new(m);
    let mut rng3 = StdRng::seed_from_u64(1003);
    for r in [0usize, 1, 3] {
        let diag: Vec<Complex> = (0..m)
            .map(|_| Complex::new(rng3.gen_range(-0.5..0.5), 0.0))
            .collect();
        w.set_diagonal(r, diag);
    }
    let lin = ev.rescale(&w.eval_hoisted(&ev, &enc, &received, &keys));
    // 2. Quadratic activation (AESPA-style).
    let act = PowerSeries::quadratic(0.5, 0.3, 0.05);
    let activated = act.eval_homomorphic(&ev, &lin, &keys.relin);
    // 3. Block aggregation (windowed sums of 16).
    let pooled = sum_block(&ev, &activated, 16, &keys);
    let reply = serialize_ciphertext(&pooled);

    // --- Client side: deserialize, decrypt, verify against plaintext.
    let result_ct = deserialize_ciphertext(&ctx, &reply).expect("valid reply");
    let out = enc.decode(&keys.secret.decrypt(&result_ct));

    let lin_plain = w.apply_plain(&msg);
    let act_plain: Vec<f64> = lin_plain.iter().map(|z| act.eval_plain(z.re)).collect();
    for j in 0..m {
        let want: f64 = (0..16).map(|i| act_plain[(j + i) % m]).sum();
        assert!(
            (out[j].re - want).abs() < 1e-2,
            "slot {j}: want {want}, got {}",
            out[j].re
        );
    }
}

#[test]
fn server_stops_deep_circuits_with_typed_noise_error() {
    // A client ships one ciphertext and asks for an unreasonably deep
    // circuit. The server drives it through the budget-guarded evaluator:
    // it must refuse with a typed `EvalError::NoiseBudgetExhausted` (never
    // panic, never return numerically meaningless bytes).
    let ctx = context();
    let mut rng = StdRng::seed_from_u64(1005);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
    let enc = Encoder::new(&ctx);
    let m = ctx.slots();
    let msg: Vec<Complex> = (0..m).map(|_| Complex::new(0.95, 0.0)).collect();
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
    let wire = serialize_ciphertext(&ct);

    // --- Server side: guarded evaluation with a 14-bit precision floor.
    let received = deserialize_ciphertext(&ctx, &wire).expect("valid wire format");
    let gv = GuardedEvaluator::new(&ctx, 14.0);
    let mut t = gv.track_fresh(received, 0.95);
    let mut depth = 0;
    let err = loop {
        match gv.square_rescale(&t, &keys.relin) {
            Ok(next) => {
                t = next;
                depth += 1;
                assert!(depth < 64, "the guard must fire before the chain runs away");
            }
            Err(e) => break e,
        }
    };
    assert!(depth >= 2, "a sane budget allows some depth, got {depth}");
    match err {
        EvalError::NoiseBudgetExhausted {
            precision_bits,
            required_bits,
            ..
        } => assert!(precision_bits < required_bits),
        // With very many levels the chain could instead bottom out — also a
        // typed error, but with these parameters noise must exhaust first.
        other => panic!("expected NoiseBudgetExhausted, got {other}"),
    }

    // The last accepted result still decrypts to the true value.
    let out = enc.decode(&keys.secret.decrypt(&t.ct));
    let want = 0.95f64.powi(1 << depth);
    assert!(
        (out[0].re - want).abs() < 1e-2,
        "last guarded result must stay accurate: got {}, want {want}",
        out[0].re
    );
}

#[test]
fn server_rejects_foreign_ciphertexts() {
    // A ciphertext from a different parameter set must be rejected at the
    // deserialization boundary, not silently mis-executed.
    let ctx_a = context();
    let ctx_b = CkksContext::new(
        CkksParams::builder()
            .log_n(11)
            .levels(8)
            .alpha(2)
            .scale_bits(40)
            .build(),
    );
    let mut rng = StdRng::seed_from_u64(1004);
    let keys_b = KeyGenerator::new(&ctx_b, &mut rng).generate(&[]);
    let enc_b = Encoder::new(&ctx_b);
    let msg = vec![Complex::ZERO; ctx_b.slots()];
    let ct_b = keys_b
        .public
        .encrypt(&enc_b.encode(&msg, ctx_b.max_level()), &mut rng);
    let err = deserialize_ciphertext(&ctx_a, &serialize_ciphertext(&ct_b)).unwrap_err();
    assert_eq!(err, SerialError::DegreeMismatch);
}
