//! Bit-exact serial-vs-parallel equivalence for the limb-parallel hot path.
//!
//! The `parpool` worker count must be a pure throughput knob: every CKKS
//! primitive — NTT batches, key switching, rescaling, and whole
//! bootstrap-shaped circuits — must produce bit-identical polynomials and
//! identical op counts at every thread count. These tests sweep
//! `parpool::set_threads` over {1, 2, 8} and compare against the serial
//! baseline. Run them under different `ANAHEIM_THREADS` values too
//! (`scripts/check.sh` does both 1 and 8): the env var sets the *starting*
//! count, and `set_threads` overrides it per sweep point.

use anaheim::ckks::keys::KeyGenerator;
use anaheim::ckks::keyswitch::KeySwitcher;
use anaheim::ckks::opcount::{self, OpCounts};
use anaheim::ckks::prelude::*;
use anaheim::math::poly::{Format, Poly};
use anaheim::math::sampling;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, OnceLock};

/// Serializes access to the global parpool thread-count override.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

struct Fixture {
    ctx: CkksContext,
    keys: KeySet,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(6)
                .alpha(2)
                .scale_bits(40)
                .build(),
        );
        let mut rng = StdRng::seed_from_u64(4242);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 2]);
        Fixture { ctx, keys }
    })
}

fn poly_data(p: &Poly) -> Vec<Vec<u64>> {
    (0..p.num_limbs())
        .map(|i| p.limb(i).data().to_vec())
        .collect()
}

fn ct_data(ct: &Ciphertext) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    (poly_data(ct.b()), poly_data(ct.a()))
}

/// Runs `f` serially, then at 2 and 8 threads, asserting bit-identical
/// results (including op counts) at every width.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> R) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let counted = |f: &dyn Fn() -> R| -> (R, OpCounts) {
        let before = opcount::snapshot();
        let r = f();
        (r, opcount::snapshot().since(&before))
    };
    parpool::set_threads(1);
    let want = counted(&f);
    for threads in [2usize, 8] {
        parpool::set_threads(threads);
        let got = counted(&f);
        assert!(
            got == want,
            "{what} diverged from serial at {threads} threads"
        );
    }
    parpool::set_threads(0);
}

#[test]
fn ntt_roundtrip_is_thread_invariant() {
    let fix = fixture();
    let level = fix.ctx.max_level();
    let mut rng = StdRng::seed_from_u64(1);
    let base = sampling::uniform(&mut rng, fix.ctx.basis_q(level), Format::Coeff);
    assert_thread_invariant("NTT round-trip", || {
        let mut p = base.duplicate();
        p.to_eval();
        let eval_data = poly_data(&p);
        p.to_coeff();
        (eval_data, poly_data(&p))
    });
}

#[test]
fn keyswitch_is_thread_invariant() {
    let fix = fixture();
    let level = fix.ctx.max_level();
    let mut rng = StdRng::seed_from_u64(2);
    let a = sampling::uniform(&mut rng, fix.ctx.basis_q(level), Format::Eval);
    let ks = KeySwitcher::new(&fix.ctx);
    assert_thread_invariant("key switch", || {
        let (b, sa) = ks.switch(&a, &fix.keys.relin, level);
        (poly_data(&b), poly_data(&sa))
    });
}

#[test]
fn rescale_is_thread_invariant() {
    let fix = fixture();
    let eval = Evaluator::new(&fix.ctx);
    let enc = Encoder::new(&fix.ctx);
    let mut rng = StdRng::seed_from_u64(3);
    let msg: Vec<Complex> = (0..fix.ctx.slots())
        .map(|i| Complex::new((i as f64).sin() * 0.3, 0.0))
        .collect();
    let pt = enc.encode(&msg, fix.ctx.max_level());
    let ct = fix.keys.public.encrypt(&pt, &mut rng);
    let prod = {
        let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        parpool::set_threads(1);
        let p = eval.mul_relin(&ct, &ct, &fix.keys.relin);
        parpool::set_threads(0);
        p
    };
    assert_thread_invariant("rescale", || ct_data(&eval.rescale(&prod)));
}

#[test]
fn bootstrap_shaped_circuit_is_thread_invariant() {
    // A keyswitch-heavy circuit with the op mix of CoeffToSlot/EvalMod
    // rounds: multiply + relinearize, rescale, rotate, conjugate-free
    // additions — the exact path where limb, digit, and key-switch
    // parallelism all compose.
    let fix = fixture();
    let eval = Evaluator::new(&fix.ctx);
    let enc = Encoder::new(&fix.ctx);
    let mut rng = StdRng::seed_from_u64(4);
    let msg: Vec<Complex> = (0..fix.ctx.slots())
        .map(|i| Complex::new((i as f64 * 0.7).cos() * 0.2, (i as f64 * 0.3).sin() * 0.1))
        .collect();
    let pt = enc.encode(&msg, fix.ctx.max_level());
    let ct = fix.keys.public.encrypt(&pt, &mut rng);
    assert_thread_invariant("bootstrap-shaped circuit", || {
        let t = eval.mul_relin_rescale(&ct, &ct, &fix.keys.relin);
        let r1 = eval.rotate(&t, 1, &fix.keys);
        let t = eval.add(&t, &r1);
        let t = eval.mul_scalar(&t, 0.5);
        let t = eval.square_relin(&t, &fix.keys.relin);
        let t = eval.rescale(&t);
        let r2 = eval.rotate(&t, 2, &fix.keys);
        let t = eval.sub(&t, &r2);
        let t = eval.negate(&t);
        let t = eval.add_scalar(&t, 0.25);
        ct_data(&t)
    });
}
