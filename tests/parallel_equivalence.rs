//! Bit-exact serial-vs-parallel equivalence for the limb-parallel hot path.
//!
//! The `parpool` worker count must be a pure throughput knob: every CKKS
//! primitive — NTT batches, key switching, rescaling, and whole
//! bootstrap-shaped circuits — must produce bit-identical polynomials and
//! identical op counts at every thread count. These tests sweep
//! `parpool::set_threads` over {1, 2, 8} and compare against the serial
//! baseline. Run them under different `ANAHEIM_THREADS` values too
//! (`scripts/check.sh` does both 1 and 8): the env var sets the *starting*
//! count, and `set_threads` overrides it per sweep point.

use anaheim::ckks::keys::KeyGenerator;
use anaheim::ckks::keyswitch::KeySwitcher;
use anaheim::ckks::opcount::{self, OpCounts};
use anaheim::ckks::prelude::*;
use anaheim::math::modulus::Modulus;
use anaheim::math::ntt::NttContext;
use anaheim::math::poly::{Format, Poly};
use anaheim::math::prime::generate_ntt_primes;
use anaheim::math::rns::{rescale_in_place, ModDown};
use anaheim::math::sampling;
use anaheim::math::tune::{self, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, OnceLock};

/// Serializes access to the global parpool thread-count override.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

struct Fixture {
    ctx: CkksContext,
    keys: KeySet,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = CkksContext::new(
            CkksParams::builder()
                .log_n(10)
                .levels(6)
                .alpha(2)
                .scale_bits(40)
                .build(),
        );
        let mut rng = StdRng::seed_from_u64(4242);
        let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 2]);
        Fixture { ctx, keys }
    })
}

fn poly_data(p: &Poly) -> Vec<Vec<u64>> {
    (0..p.num_limbs())
        .map(|i| p.limb(i).data().to_vec())
        .collect()
}

fn ct_data(ct: &Ciphertext) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    (poly_data(ct.b()), poly_data(ct.a()))
}

/// Runs `f` serially, then at 2 and 8 threads, asserting bit-identical
/// results (including op counts) at every width.
fn assert_thread_invariant<R: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> R) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let counted = |f: &dyn Fn() -> R| -> (R, OpCounts) {
        let before = opcount::snapshot();
        let r = f();
        (r, opcount::snapshot().since(&before))
    };
    parpool::set_threads(1);
    let want = counted(&f);
    for threads in [2usize, 8] {
        parpool::set_threads(threads);
        let got = counted(&f);
        assert!(
            got == want,
            "{what} diverged from serial at {threads} threads"
        );
    }
    parpool::set_threads(0);
}

/// The tuner profiles the ring sweeps exercise: forced-serial, forced
/// fan-out-everything, and the host defaults. Together with the thread
/// sweep this covers both sides of every cost-model decision: a profile
/// may only change *scheduling*, never results.
fn sweep_profiles() -> [(&'static str, Profile); 3] {
    [
        ("serial", Profile::serial()),
        ("max_parallel", Profile::max_parallel()),
        ("default", Profile::default_seeded()),
    ]
}

/// Runs `f` under the serial profile at 1 thread, then under every
/// profile × thread-count combination, asserting bit-identical results.
/// Restores the environment profile afterwards.
fn assert_profile_and_thread_invariant<R: PartialEq + std::fmt::Debug>(
    what: &str,
    f: impl Fn() -> R,
) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tune::set_profile(Profile::serial());
    parpool::set_threads(1);
    let want = f();
    for (pname, profile) in sweep_profiles() {
        tune::set_profile(profile);
        for threads in [1usize, 2, 8] {
            parpool::set_threads(threads);
            let got = f();
            assert!(
                got == want,
                "{what} diverged under profile {pname} at {threads} threads"
            );
        }
    }
    tune::reset_profile();
    parpool::set_threads(0);
}

/// An NTT/elementwise/automorphism/BConv/rescale workout over one ring,
/// touching every tuned fan-out path in `ckks-math` (including the ModDown
/// INTT and NTT batches whose gates used to be asymmetric). Returns all
/// limb data so the sweep can compare bit-for-bit.
fn math_workout(log_n: u32, levels: usize) -> Vec<Vec<Vec<u64>>> {
    let n = 1usize << log_n;
    let alpha = 2usize;
    let basis: Vec<Arc<NttContext>> = generate_ntt_primes(45, levels + alpha, 2 * n as u64)
        .into_iter()
        .map(|q| Arc::new(NttContext::new(n, Modulus::new(q))))
        .collect();
    let (q_basis, p_basis) = basis.split_at(levels);
    let mod_down = ModDown::new(q_basis, p_basis);
    let coeffs: Vec<i64> = (0..n as i64).map(|i| (i * 31 + 7) % 997 - 498).collect();
    let other: Vec<i64> = (0..n as i64).map(|i| (i * 17 + 3) % 991 - 495).collect();

    let mut x = Poly::from_coeff_i64(q_basis, &coeffs);
    let y = Poly::from_coeff_i64(q_basis, &other);
    x.add_assign(&y);
    let mut s = x.subbed(&y);
    s.to_eval();
    let mut ye = y.duplicate();
    ye.to_eval();
    s.mul_assign(&ye);
    s.mac_assign(&ye, &ye);
    let rot = s.automorphism(5);
    let mut sum = rot.added(&s);
    let mut rescaled = sum.duplicate();
    rescale_in_place(&mut rescaled);
    // ModDown input: limbs over Q ‖ P in the evaluation domain.
    let mut full = Poly::from_coeff_i64(&basis, &coeffs);
    full.to_eval();
    let down = mod_down.apply(&full);
    sum.to_coeff();
    [sum, rescaled, down]
        .iter()
        .map(|p| {
            (0..p.num_limbs())
                .map(|i| p.limb(i).data().to_vec())
                .collect()
        })
        .collect()
}

#[test]
fn tuned_paths_match_serial_across_rings_and_profiles() {
    // Ring sizes spanning the tuner's decision boundary: at 2^10 the model
    // keeps everything serial, by 2^13 NTT batches fan out under the
    // max_parallel profile. (The paper-scale rings 2^14..2^16 run the same
    // sweep in the #[ignore]d test below — too slow for a debug-mode CI
    // pass.)
    for (log_n, levels) in [(10u32, 4usize), (12, 6), (13, 3)] {
        assert_profile_and_thread_invariant(&format!("math workout n=2^{log_n}"), || {
            math_workout(log_n, levels)
        });
    }
}

#[test]
#[ignore = "paper-scale rings; run with --ignored (release profile recommended)"]
fn tuned_paths_match_serial_at_paper_rings() {
    for (log_n, levels) in [(14u32, 4usize), (15, 4), (16, 3)] {
        assert_profile_and_thread_invariant(&format!("math workout n=2^{log_n}"), || {
            math_workout(log_n, levels)
        });
    }
}

#[test]
fn keyswitch_is_profile_invariant() {
    // The digit fan-out (chunked pool jobs + shared op-count sink) must
    // produce identical polynomials AND identical op-count totals under
    // every profile × thread combination.
    let fix = fixture();
    let level = fix.ctx.max_level();
    let mut rng = StdRng::seed_from_u64(7);
    let a = sampling::uniform(&mut rng, fix.ctx.basis_q(level), Format::Eval);
    let ks = KeySwitcher::new(&fix.ctx);
    assert_profile_and_thread_invariant("key switch (profiles)", || {
        let before = opcount::snapshot();
        let (b, sa) = ks.switch(&a, &fix.keys.relin, level);
        (
            poly_data(&b),
            poly_data(&sa),
            opcount::snapshot().since(&before),
        )
    });
}

#[test]
fn ntt_roundtrip_is_thread_invariant() {
    let fix = fixture();
    let level = fix.ctx.max_level();
    let mut rng = StdRng::seed_from_u64(1);
    let base = sampling::uniform(&mut rng, fix.ctx.basis_q(level), Format::Coeff);
    assert_thread_invariant("NTT round-trip", || {
        let mut p = base.duplicate();
        p.to_eval();
        let eval_data = poly_data(&p);
        p.to_coeff();
        (eval_data, poly_data(&p))
    });
}

#[test]
fn keyswitch_is_thread_invariant() {
    let fix = fixture();
    let level = fix.ctx.max_level();
    let mut rng = StdRng::seed_from_u64(2);
    let a = sampling::uniform(&mut rng, fix.ctx.basis_q(level), Format::Eval);
    let ks = KeySwitcher::new(&fix.ctx);
    assert_thread_invariant("key switch", || {
        let (b, sa) = ks.switch(&a, &fix.keys.relin, level);
        (poly_data(&b), poly_data(&sa))
    });
}

#[test]
fn rescale_is_thread_invariant() {
    let fix = fixture();
    let eval = Evaluator::new(&fix.ctx);
    let enc = Encoder::new(&fix.ctx);
    let mut rng = StdRng::seed_from_u64(3);
    let msg: Vec<Complex> = (0..fix.ctx.slots())
        .map(|i| Complex::new((i as f64).sin() * 0.3, 0.0))
        .collect();
    let pt = enc.encode(&msg, fix.ctx.max_level());
    let ct = fix.keys.public.encrypt(&pt, &mut rng);
    let prod = {
        let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        parpool::set_threads(1);
        let p = eval.mul_relin(&ct, &ct, &fix.keys.relin);
        parpool::set_threads(0);
        p
    };
    assert_thread_invariant("rescale", || ct_data(&eval.rescale(&prod)));
}

#[test]
fn bootstrap_shaped_circuit_is_thread_invariant() {
    // A keyswitch-heavy circuit with the op mix of CoeffToSlot/EvalMod
    // rounds: multiply + relinearize, rescale, rotate, conjugate-free
    // additions — the exact path where limb, digit, and key-switch
    // parallelism all compose.
    let fix = fixture();
    let eval = Evaluator::new(&fix.ctx);
    let enc = Encoder::new(&fix.ctx);
    let mut rng = StdRng::seed_from_u64(4);
    let msg: Vec<Complex> = (0..fix.ctx.slots())
        .map(|i| Complex::new((i as f64 * 0.7).cos() * 0.2, (i as f64 * 0.3).sin() * 0.1))
        .collect();
    let pt = enc.encode(&msg, fix.ctx.max_level());
    let ct = fix.keys.public.encrypt(&pt, &mut rng);
    assert_thread_invariant("bootstrap-shaped circuit", || {
        let t = eval.mul_relin_rescale(&ct, &ct, &fix.keys.relin);
        let r1 = eval.rotate(&t, 1, &fix.keys);
        let t = eval.add(&t, &r1);
        let t = eval.mul_scalar(&t, 0.5);
        let t = eval.square_relin(&t, &fix.keys.relin);
        let t = eval.rescale(&t);
        let r2 = eval.rotate(&t, 2, &fix.keys);
        let t = eval.sub(&t, &r2);
        let t = eval.negate(&t);
        let t = eval.add_scalar(&t, 0.25);
        ct_data(&t)
    });
}
