//! Cross-validation: the performance model's IR builders must emit exactly
//! the op mix the functional CKKS library executes.
//!
//! This is the test that ties the two halves of the reproduction together:
//! `anaheim_core::build` generates the op streams the scheduler prices, and
//! `ckks` *measures* the same quantities while actually computing on
//! encrypted data. If these disagree, the figures are fiction.

use anaheim::ckks::prelude::*;
use anaheim::ckks::{keyswitch::KeySwitcher, opcount};
use anaheim::core::build::Builder;
use anaheim::core::params::ParamSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The functional test context: N = 2^10, 5 Q-limbs, α = 2 (D = 3).
fn functional_context() -> CkksContext {
    CkksContext::new(CkksParams::test_small())
}

/// The matching model descriptor.
fn model_params(ctx: &CkksContext) -> ParamSet {
    ParamSet::custom(ctx.params().log_n, ctx.max_level(), ctx.params().alpha)
}

#[test]
fn keyswitch_op_counts_match_functional_library() {
    let ctx = functional_context();
    let mut rng = StdRng::seed_from_u64(71);
    let mut kg = anaheim::ckks::keys::KeyGenerator::new(&ctx, &mut rng);
    let sk = kg.gen_secret();
    let relin = kg.gen_relin(&sk);
    let level = ctx.max_level();
    let mut rng2 = StdRng::seed_from_u64(72);
    let a = anaheim::math::sampling::uniform(
        &mut rng2,
        ctx.basis_q(level),
        anaheim::math::poly::Format::Eval,
    );

    opcount::reset();
    let ks = KeySwitcher::new(&ctx);
    let _ = ks.switch(&a, &relin, level);
    let measured = opcount::snapshot();

    // Model: ModUp + KeyMult + ModDown at the same level.
    let params = model_params(&ctx);
    let mut b = Builder::new(params);
    // hrot = keyswitch + add + automorphism; strip the extras.
    let seq = b.hrot(level);
    let s = seq.summary();

    assert_eq!(s.intt_limbs, measured.intt_limbs, "INTT limbs");
    assert_eq!(s.ntt_limbs, measured.ntt_limbs, "NTT limbs");
    assert_eq!(
        s.bconv_limb_products, measured.bconv_limb_products,
        "BConv products"
    );
    assert_eq!(seq.keyswitches, measured.keyswitches, "keyswitch count");
}

#[test]
fn hrot_op_counts_match_functional_library() {
    let ctx = functional_context();
    let mut rng = StdRng::seed_from_u64(73);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1]);
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(i as f64 * 1e-3, 0.0))
        .collect();
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);

    opcount::reset();
    let _ = ev.rotate(&ct, 1, &keys);
    let measured = opcount::snapshot();

    let params = model_params(&ctx);
    let mut b = Builder::new(params);
    let seq = b.hrot(ctx.max_level());
    let s = seq.summary();

    assert_eq!(s.intt_limbs, measured.intt_limbs, "INTT limbs");
    assert_eq!(s.ntt_limbs, measured.ntt_limbs, "NTT limbs");
    assert_eq!(
        s.bconv_limb_products, measured.bconv_limb_products,
        "BConv products"
    );
    assert_eq!(
        s.automorphism_limbs, measured.automorphism_limbs,
        "automorphism limbs"
    );
    assert_eq!(s.ew_limb_ops, measured.ew_limb_ops, "element-wise limb ops");
}

#[test]
fn hmult_op_counts_match_functional_library() {
    let ctx = functional_context();
    let mut rng = StdRng::seed_from_u64(74);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let msg: Vec<Complex> = vec![Complex::new(0.5, 0.0); ctx.slots()];
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);

    opcount::reset();
    let _ = ev.rescale(&ev.mul_relin(&ct, &ct, &keys.relin));
    let measured = opcount::snapshot();

    let params = model_params(&ctx);
    let mut b = Builder::new(params);
    let seq = b.hmult(ctx.max_level());
    let s = seq.summary();

    assert_eq!(s.intt_limbs, measured.intt_limbs, "INTT limbs");
    assert_eq!(s.ntt_limbs, measured.ntt_limbs, "NTT limbs");
    assert_eq!(
        s.bconv_limb_products, measured.bconv_limb_products,
        "BConv products"
    );
    assert_eq!(s.ew_limb_ops, measured.ew_limb_ops, "element-wise limb ops");
    assert_eq!(seq.keyswitches, measured.keyswitches, "keyswitch count");
}

#[test]
fn hoisting_effect_holds_in_both_layers() {
    // The §IV-B observation in both worlds: hoisting shifts the op mix
    // toward element-wise work.
    let ctx = functional_context();
    let mut rng = StdRng::seed_from_u64(75);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 2, 3, 4]);
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new((i % 3) as f64 * 0.1, 0.0))
        .collect();
    let ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);

    let mut t = anaheim::ckks::lintrans::LinearTransform::new(ctx.slots());
    for r in [0usize, 1, 2, 3, 4] {
        t.set_diagonal(r, vec![Complex::new(0.1, 0.0); ctx.slots()]);
    }

    opcount::reset();
    let _ = t.eval_hoisted(&ev, &enc, &ct, &keys);
    let hoisted = opcount::snapshot();
    opcount::reset();
    let _ = t.eval_minks(&ev, &enc, &ct, &keys);
    let minks = opcount::snapshot();

    let func_shift = (hoisted.ew_limb_ops as f64 / hoisted.total_ntt_limbs() as f64)
        / (minks.ew_limb_ops as f64 / minks.total_ntt_limbs() as f64);

    // Model side at the same structural parameters.
    use anaheim::core::build::LinTransStyle;
    let params = model_params(&ctx);
    let mut b = Builder::new(params.clone());
    let h = b.lintrans(ctx.max_level(), 5, LinTransStyle::Hoisting, true);
    let mut b2 = Builder::new(params);
    let m = b2.lintrans(ctx.max_level(), 5, LinTransStyle::MinKS, false);
    let sh = h.summary();
    let sm = m.summary();
    let model_shift = (sh.ew_limb_ops as f64 / sh.total_ntt_limbs() as f64)
        / (sm.ew_limb_ops as f64 / sm.total_ntt_limbs() as f64);

    assert!(
        func_shift > 1.3,
        "functional hoisting shift: {func_shift:.2}"
    );
    assert!(model_shift > 1.3, "model hoisting shift: {model_shift:.2}");
}
