//! Property tests over the Anaheim IR, builders, and passes: invariants
//! that must hold for *any* parameter choice, not just the paper's.

use anaheim::core::build::{Builder, LinTransStyle};
use anaheim::core::ir::{Executor, OpKind, OpSequence};
use anaheim::core::params::ParamSet;
use anaheim::core::passes::{fuse, offload, FusionConfig, OffloadPolicy};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ParamSet> {
    prop_oneof![
        Just(ParamSet::with_decomposition(2)),
        Just(ParamSet::with_decomposition(3)),
        Just(ParamSet::with_decomposition(4)),
        Just(ParamSet::with_decomposition(6)),
        Just(ParamSet::with_decomposition(8)),
        (4u32..9, 3usize..20, 1usize..5)
            .prop_map(|(log_n, l, a)| { ParamSet::custom(log_n, l, a.min(l)) }),
    ]
}

fn ew_work(seq: &OpSequence) -> u64 {
    seq.summary().ew_limb_ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fusion_preserves_elementwise_work(params in arb_params(),
                                         k in 2usize..12,
                                         reorder in any::<bool>()) {
        // BasicFuse merges ops; the *amount* of element-wise arithmetic
        // (limb-MACs) must not change — fusion is about ACT/PRE
        // amortization, not skipping math.
        let level = params.l_max;
        let mut b = Builder::new(params);
        let seq = b.lintrans(level, k, LinTransStyle::Hoisting, reorder);
        let before = ew_work(&seq);
        let mut fused = seq.clone();
        fuse(&mut fused, &FusionConfig::basic_only());
        prop_assert_eq!(before, ew_work(&fused), "BasicFuse must preserve EW work");
        // AutFuse also preserves NTT and automorphism volumes.
        let mut full = seq.clone();
        fuse(&mut full, &FusionConfig::full());
        prop_assert_eq!(seq.summary().total_ntt_limbs(), full.summary().total_ntt_limbs());
        prop_assert_eq!(
            seq.summary().automorphism_limbs,
            full.summary().automorphism_limbs
        );
    }

    #[test]
    fn fusion_never_increases_traffic_or_ops(params in arb_params(), k in 2usize..10) {
        let level = params.l_max;
        let mut b = Builder::new(params);
        let seq = b.lintrans(level, k, LinTransStyle::Hoisting, true);
        let mut fused = seq.clone();
        fuse(&mut fused, &FusionConfig::full());
        prop_assert!(fused.ideal_bytes() <= seq.ideal_bytes());
        prop_assert!(fused.ops.len() <= seq.ops.len());
    }

    #[test]
    fn offload_only_moves_elementwise(params in arb_params(), k in 2usize..10) {
        let level = params.l_max;
        let mut b = Builder::new(params);
        let mut seq = b.lintrans(level, k, LinTransStyle::Hoisting, true);
        fuse(&mut seq, &FusionConfig::full());
        let n_ops_before = seq.ops.len();
        let stats = offload(&mut seq, &OffloadPolicy::aggressive());
        for op in &seq.ops {
            match op.kind {
                OpKind::Ew { .. } => prop_assert_eq!(op.executor, Executor::Pim),
                OpKind::WriteBack { .. } => prop_assert_eq!(op.executor, Executor::Gpu),
                _ => prop_assert_eq!(op.executor, Executor::Gpu),
            }
        }
        // Only write-backs are added, nothing removed.
        let writebacks = seq
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::WriteBack { .. }))
            .count();
        prop_assert_eq!(seq.ops.len(), n_ops_before + writebacks);
        prop_assert!(stats.offloaded_ops > 0);
    }

    #[test]
    fn offload_preserves_summary(params in arb_params(), k in 2usize..10) {
        let level = params.l_max;
        let mut b = Builder::new(params);
        let mut seq = b.lintrans(level, k, LinTransStyle::Hoisting, true);
        fuse(&mut seq, &FusionConfig::full());
        let before = seq.summary();
        offload(&mut seq, &OffloadPolicy::aggressive());
        prop_assert_eq!(before, seq.summary(), "offload must not change the work");
    }

    #[test]
    fn hoisting_always_fewer_keyswitches_than_base(params in arb_params(),
                                                   k in 3usize..12) {
        let level = params.l_max;
        let mut b1 = Builder::new(params.clone());
        let hoist = b1.lintrans(level, k, LinTransStyle::Hoisting, true);
        let mut b2 = Builder::new(params);
        let base = b2.lintrans(level, k, LinTransStyle::Base, false);
        prop_assert!(hoist.keyswitches < base.keyswitches);
    }

    #[test]
    fn bsgs_scales_sublinearly_in_k(params in prop_oneof![
        Just(ParamSet::paper_default())], k in 9usize..32) {
        // BSGS key switches grow ~2√K, not K.
        let level = params.l_max;
        let n1 = (k as f64).sqrt().ceil() as usize;
        let mut b = Builder::new(params);
        let seq = b.lintrans_bsgs(level, k, n1);
        prop_assert!(
            seq.keyswitches as usize <= 2 * n1 + 2,
            "BSGS keyswitches {} must be ~2√K = {}",
            seq.keyswitches,
            2 * n1
        );
    }

    #[test]
    fn builders_track_bytes_consistently(params in arb_params()) {
        // Every op must touch at least one object, and object byte counts
        // must be limb-consistent (multiples of the limb size).
        let level = params.l_max;
        let limb = params.limb_bytes() as u64;
        let mut b = Builder::new(params);
        let seq = b.hmult(level);
        for op in &seq.ops {
            prop_assert!(
                !(op.reads.is_empty() && op.writes.is_empty()),
                "ops must reference data"
            );
            for r in op.reads.iter().chain(op.writes.iter()) {
                prop_assert!(r.bytes % limb == 0, "bytes must be whole limbs");
            }
        }
    }
}

#[test]
fn fusion_is_idempotent() {
    let mut b = Builder::new(ParamSet::paper_default());
    let mut seq = b.lintrans(54, 8, LinTransStyle::Hoisting, true);
    fuse(&mut seq, &FusionConfig::full());
    let once = seq.clone();
    fuse(&mut seq, &FusionConfig::full());
    assert_eq!(once.ops.len(), seq.ops.len(), "re-fusing must be a no-op");
    assert_eq!(once.summary(), seq.summary());
}
