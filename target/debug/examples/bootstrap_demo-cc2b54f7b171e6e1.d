/root/repo/target/debug/examples/bootstrap_demo-cc2b54f7b171e6e1.d: examples/bootstrap_demo.rs

/root/repo/target/debug/examples/bootstrap_demo-cc2b54f7b171e6e1: examples/bootstrap_demo.rs

examples/bootstrap_demo.rs:
