/root/repo/target/debug/examples/workload_study-9ee63364e20a8741.d: examples/workload_study.rs

/root/repo/target/debug/examples/workload_study-9ee63364e20a8741: examples/workload_study.rs

examples/workload_study.rs:
