/root/repo/target/debug/examples/workload_study-6f3be7d99c677d85.d: examples/workload_study.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_study-6f3be7d99c677d85.rmeta: examples/workload_study.rs Cargo.toml

examples/workload_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
