/root/repo/target/debug/examples/workload_study-b1f0e8088b882218.d: examples/workload_study.rs

/root/repo/target/debug/examples/workload_study-b1f0e8088b882218: examples/workload_study.rs

examples/workload_study.rs:
