/root/repo/target/debug/examples/encrypted_logistic_regression-c195e974f686ae63.d: examples/encrypted_logistic_regression.rs

/root/repo/target/debug/examples/libencrypted_logistic_regression-c195e974f686ae63.rmeta: examples/encrypted_logistic_regression.rs

examples/encrypted_logistic_regression.rs:
