/root/repo/target/debug/examples/encrypted_logistic_regression-666b33f6ebf96605.d: examples/encrypted_logistic_regression.rs

/root/repo/target/debug/examples/encrypted_logistic_regression-666b33f6ebf96605: examples/encrypted_logistic_regression.rs

examples/encrypted_logistic_regression.rs:
