/root/repo/target/debug/examples/encrypted_logistic_regression-c8e465174af547cf.d: examples/encrypted_logistic_regression.rs

/root/repo/target/debug/examples/encrypted_logistic_regression-c8e465174af547cf: examples/encrypted_logistic_regression.rs

examples/encrypted_logistic_regression.rs:
