/root/repo/target/debug/examples/quickstart-3a3012533b89b71a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3a3012533b89b71a: examples/quickstart.rs

examples/quickstart.rs:
