/root/repo/target/debug/examples/bootstrap_demo-9d3e4aa1749a91a1.d: examples/bootstrap_demo.rs Cargo.toml

/root/repo/target/debug/examples/libbootstrap_demo-9d3e4aa1749a91a1.rmeta: examples/bootstrap_demo.rs Cargo.toml

examples/bootstrap_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
