/root/repo/target/debug/examples/workload_study-19e6ec82b54946ea.d: examples/workload_study.rs

/root/repo/target/debug/examples/libworkload_study-19e6ec82b54946ea.rmeta: examples/workload_study.rs

examples/workload_study.rs:
