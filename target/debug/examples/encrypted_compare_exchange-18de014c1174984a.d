/root/repo/target/debug/examples/encrypted_compare_exchange-18de014c1174984a.d: examples/encrypted_compare_exchange.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_compare_exchange-18de014c1174984a.rmeta: examples/encrypted_compare_exchange.rs Cargo.toml

examples/encrypted_compare_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
