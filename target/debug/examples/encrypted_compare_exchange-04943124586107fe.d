/root/repo/target/debug/examples/encrypted_compare_exchange-04943124586107fe.d: examples/encrypted_compare_exchange.rs

/root/repo/target/debug/examples/encrypted_compare_exchange-04943124586107fe: examples/encrypted_compare_exchange.rs

examples/encrypted_compare_exchange.rs:
