/root/repo/target/debug/examples/pim_linear_transform-16008a8144dadd2a.d: examples/pim_linear_transform.rs

/root/repo/target/debug/examples/pim_linear_transform-16008a8144dadd2a: examples/pim_linear_transform.rs

examples/pim_linear_transform.rs:
