/root/repo/target/debug/examples/quickstart-cea027950cfe910a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cea027950cfe910a: examples/quickstart.rs

examples/quickstart.rs:
