/root/repo/target/debug/examples/encrypted_logistic_regression-1d71b99c1edc2f2e.d: examples/encrypted_logistic_regression.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_logistic_regression-1d71b99c1edc2f2e.rmeta: examples/encrypted_logistic_regression.rs Cargo.toml

examples/encrypted_logistic_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
