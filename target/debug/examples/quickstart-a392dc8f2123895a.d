/root/repo/target/debug/examples/quickstart-a392dc8f2123895a.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-a392dc8f2123895a.rmeta: examples/quickstart.rs

examples/quickstart.rs:
