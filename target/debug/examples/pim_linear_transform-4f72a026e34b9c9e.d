/root/repo/target/debug/examples/pim_linear_transform-4f72a026e34b9c9e.d: examples/pim_linear_transform.rs

/root/repo/target/debug/examples/libpim_linear_transform-4f72a026e34b9c9e.rmeta: examples/pim_linear_transform.rs

examples/pim_linear_transform.rs:
