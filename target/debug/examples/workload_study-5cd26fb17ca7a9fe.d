/root/repo/target/debug/examples/workload_study-5cd26fb17ca7a9fe.d: examples/workload_study.rs Cargo.toml

/root/repo/target/debug/examples/libworkload_study-5cd26fb17ca7a9fe.rmeta: examples/workload_study.rs Cargo.toml

examples/workload_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
