/root/repo/target/debug/examples/pim_linear_transform-8c95c79e8bde1345.d: examples/pim_linear_transform.rs Cargo.toml

/root/repo/target/debug/examples/libpim_linear_transform-8c95c79e8bde1345.rmeta: examples/pim_linear_transform.rs Cargo.toml

examples/pim_linear_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
