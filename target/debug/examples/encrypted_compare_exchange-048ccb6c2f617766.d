/root/repo/target/debug/examples/encrypted_compare_exchange-048ccb6c2f617766.d: examples/encrypted_compare_exchange.rs

/root/repo/target/debug/examples/libencrypted_compare_exchange-048ccb6c2f617766.rmeta: examples/encrypted_compare_exchange.rs

examples/encrypted_compare_exchange.rs:
