/root/repo/target/debug/examples/encrypted_compare_exchange-06707d118aaa27f1.d: examples/encrypted_compare_exchange.rs

/root/repo/target/debug/examples/encrypted_compare_exchange-06707d118aaa27f1: examples/encrypted_compare_exchange.rs

examples/encrypted_compare_exchange.rs:
