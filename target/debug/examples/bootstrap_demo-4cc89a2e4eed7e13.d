/root/repo/target/debug/examples/bootstrap_demo-4cc89a2e4eed7e13.d: examples/bootstrap_demo.rs

/root/repo/target/debug/examples/bootstrap_demo-4cc89a2e4eed7e13: examples/bootstrap_demo.rs

examples/bootstrap_demo.rs:
