/root/repo/target/debug/examples/bootstrap_demo-a4ef44761af20f66.d: examples/bootstrap_demo.rs

/root/repo/target/debug/examples/libbootstrap_demo-a4ef44761af20f66.rmeta: examples/bootstrap_demo.rs

examples/bootstrap_demo.rs:
