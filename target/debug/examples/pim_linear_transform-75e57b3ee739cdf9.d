/root/repo/target/debug/examples/pim_linear_transform-75e57b3ee739cdf9.d: examples/pim_linear_transform.rs

/root/repo/target/debug/examples/pim_linear_transform-75e57b3ee739cdf9: examples/pim_linear_transform.rs

examples/pim_linear_transform.rs:
