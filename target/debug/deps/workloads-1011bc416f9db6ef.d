/root/repo/target/debug/deps/workloads-1011bc416f9db6ef.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-1011bc416f9db6ef.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
