/root/repo/target/debug/deps/client_server_pipeline-2774ef49b86496e9.d: tests/client_server_pipeline.rs

/root/repo/target/debug/deps/client_server_pipeline-2774ef49b86496e9: tests/client_server_pipeline.rs

tests/client_server_pipeline.rs:
