/root/repo/target/debug/deps/anaheim_core-cbb304b70e89fcd0.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/debug/deps/anaheim_core-cbb304b70e89fcd0: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/ir.rs:
crates/core/src/params.rs:
crates/core/src/passes.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
