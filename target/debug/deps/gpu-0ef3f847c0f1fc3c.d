/root/repo/target/debug/deps/gpu-0ef3f847c0f1fc3c.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/libgpu-0ef3f847c0f1fc3c.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/model.rs:
