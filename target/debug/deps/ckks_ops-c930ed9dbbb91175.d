/root/repo/target/debug/deps/ckks_ops-c930ed9dbbb91175.d: crates/bench/benches/ckks_ops.rs

/root/repo/target/debug/deps/libckks_ops-c930ed9dbbb91175.rmeta: crates/bench/benches/ckks_ops.rs

crates/bench/benches/ckks_ops.rs:
