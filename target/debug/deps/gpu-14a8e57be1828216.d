/root/repo/target/debug/deps/gpu-14a8e57be1828216.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libgpu-14a8e57be1828216.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
