/root/repo/target/debug/deps/properties-4a2f68a8832ede4b.d: crates/ckks-math/tests/properties.rs

/root/repo/target/debug/deps/properties-4a2f68a8832ede4b: crates/ckks-math/tests/properties.rs

crates/ckks-math/tests/properties.rs:
