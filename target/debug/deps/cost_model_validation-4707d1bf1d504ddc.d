/root/repo/target/debug/deps/cost_model_validation-4707d1bf1d504ddc.d: tests/cost_model_validation.rs

/root/repo/target/debug/deps/cost_model_validation-4707d1bf1d504ddc: tests/cost_model_validation.rs

tests/cost_model_validation.rs:
