/root/repo/target/debug/deps/keyswitch-667b4207acb08fbe.d: crates/bench/benches/keyswitch.rs Cargo.toml

/root/repo/target/debug/deps/libkeyswitch-667b4207acb08fbe.rmeta: crates/bench/benches/keyswitch.rs Cargo.toml

crates/bench/benches/keyswitch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
