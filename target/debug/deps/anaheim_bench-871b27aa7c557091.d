/root/repo/target/debug/deps/anaheim_bench-871b27aa7c557091.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libanaheim_bench-871b27aa7c557091.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
