/root/repo/target/debug/deps/ckks_math-f65fc1e89fd92d50.d: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

/root/repo/target/debug/deps/ckks_math-f65fc1e89fd92d50: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

crates/ckks-math/src/lib.rs:
crates/ckks-math/src/modulus.rs:
crates/ckks-math/src/ntt.rs:
crates/ckks-math/src/poly.rs:
crates/ckks-math/src/pool.rs:
crates/ckks-math/src/prime.rs:
crates/ckks-math/src/rns.rs:
crates/ckks-math/src/sampling.rs:
