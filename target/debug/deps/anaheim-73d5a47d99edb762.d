/root/repo/target/debug/deps/anaheim-73d5a47d99edb762.d: src/lib.rs

/root/repo/target/debug/deps/libanaheim-73d5a47d99edb762.rmeta: src/lib.rs

src/lib.rs:
