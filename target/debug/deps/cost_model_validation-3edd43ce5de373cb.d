/root/repo/target/debug/deps/cost_model_validation-3edd43ce5de373cb.d: tests/cost_model_validation.rs

/root/repo/target/debug/deps/cost_model_validation-3edd43ce5de373cb: tests/cost_model_validation.rs

tests/cost_model_validation.rs:
