/root/repo/target/debug/deps/anaheim-8f5da3c0b6a2df12.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim-8f5da3c0b6a2df12.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
