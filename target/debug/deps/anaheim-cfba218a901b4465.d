/root/repo/target/debug/deps/anaheim-cfba218a901b4465.d: src/lib.rs

/root/repo/target/debug/deps/libanaheim-cfba218a901b4465.rlib: src/lib.rs

/root/repo/target/debug/deps/libanaheim-cfba218a901b4465.rmeta: src/lib.rs

src/lib.rs:
