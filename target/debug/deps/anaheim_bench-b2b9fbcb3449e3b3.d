/root/repo/target/debug/deps/anaheim_bench-b2b9fbcb3449e3b3.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libanaheim_bench-b2b9fbcb3449e3b3.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libanaheim_bench-b2b9fbcb3449e3b3.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
