/root/repo/target/debug/deps/dram-644668a995bc3a00.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/debug/deps/libdram-644668a995bc3a00.rmeta: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
