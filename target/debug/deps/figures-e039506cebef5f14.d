/root/repo/target/debug/deps/figures-e039506cebef5f14.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-e039506cebef5f14: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
