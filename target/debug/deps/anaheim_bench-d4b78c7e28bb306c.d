/root/repo/target/debug/deps/anaheim_bench-d4b78c7e28bb306c.d: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim_bench-d4b78c7e28bb306c.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
