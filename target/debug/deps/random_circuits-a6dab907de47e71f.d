/root/repo/target/debug/deps/random_circuits-a6dab907de47e71f.d: tests/random_circuits.rs

/root/repo/target/debug/deps/librandom_circuits-a6dab907de47e71f.rmeta: tests/random_circuits.rs

tests/random_circuits.rs:
