/root/repo/target/debug/deps/anaheim_bench-9744d2cded39fb9e.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libanaheim_bench-9744d2cded39fb9e.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libanaheim_bench-9744d2cded39fb9e.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
