/root/repo/target/debug/deps/workloads-cfa7585c04d662d0.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/workloads-cfa7585c04d662d0: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
