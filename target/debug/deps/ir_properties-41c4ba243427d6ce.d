/root/repo/target/debug/deps/ir_properties-41c4ba243427d6ce.d: tests/ir_properties.rs

/root/repo/target/debug/deps/ir_properties-41c4ba243427d6ce: tests/ir_properties.rs

tests/ir_properties.rs:
