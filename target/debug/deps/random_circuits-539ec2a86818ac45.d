/root/repo/target/debug/deps/random_circuits-539ec2a86818ac45.d: tests/random_circuits.rs

/root/repo/target/debug/deps/random_circuits-539ec2a86818ac45: tests/random_circuits.rs

tests/random_circuits.rs:
