/root/repo/target/debug/deps/properties-1ac72da0f0ca3261.d: crates/ckks-math/tests/properties.rs

/root/repo/target/debug/deps/properties-1ac72da0f0ca3261: crates/ckks-math/tests/properties.rs

crates/ckks-math/tests/properties.rs:
