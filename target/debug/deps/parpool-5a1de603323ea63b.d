/root/repo/target/debug/deps/parpool-5a1de603323ea63b.d: vendor/parpool/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparpool-5a1de603323ea63b.rmeta: vendor/parpool/src/lib.rs Cargo.toml

vendor/parpool/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
