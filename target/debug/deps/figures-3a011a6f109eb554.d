/root/repo/target/debug/deps/figures-3a011a6f109eb554.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3a011a6f109eb554: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
