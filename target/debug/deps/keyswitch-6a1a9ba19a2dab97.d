/root/repo/target/debug/deps/keyswitch-6a1a9ba19a2dab97.d: crates/bench/benches/keyswitch.rs Cargo.toml

/root/repo/target/debug/deps/libkeyswitch-6a1a9ba19a2dab97.rmeta: crates/bench/benches/keyswitch.rs Cargo.toml

crates/bench/benches/keyswitch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
