/root/repo/target/debug/deps/serial_fuzz-393fd2b09dc7dbd5.d: tests/serial_fuzz.rs

/root/repo/target/debug/deps/serial_fuzz-393fd2b09dc7dbd5: tests/serial_fuzz.rs

tests/serial_fuzz.rs:
