/root/repo/target/debug/deps/serial_fuzz-29c673401593ab69.d: tests/serial_fuzz.rs

/root/repo/target/debug/deps/libserial_fuzz-29c673401593ab69.rmeta: tests/serial_fuzz.rs

tests/serial_fuzz.rs:
