/root/repo/target/debug/deps/workloads-72c71a5202a3b55a.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libworkloads-72c71a5202a3b55a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
