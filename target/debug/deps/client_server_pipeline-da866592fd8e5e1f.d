/root/repo/target/debug/deps/client_server_pipeline-da866592fd8e5e1f.d: tests/client_server_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libclient_server_pipeline-da866592fd8e5e1f.rmeta: tests/client_server_pipeline.rs Cargo.toml

tests/client_server_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
