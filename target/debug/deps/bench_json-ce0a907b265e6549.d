/root/repo/target/debug/deps/bench_json-ce0a907b265e6549.d: crates/bench/src/bin/bench_json.rs Cargo.toml

/root/repo/target/debug/deps/libbench_json-ce0a907b265e6549.rmeta: crates/bench/src/bin/bench_json.rs Cargo.toml

crates/bench/src/bin/bench_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
