/root/repo/target/debug/deps/parpool-1e54388eb76db382.d: vendor/parpool/src/lib.rs

/root/repo/target/debug/deps/parpool-1e54388eb76db382: vendor/parpool/src/lib.rs

vendor/parpool/src/lib.rs:
