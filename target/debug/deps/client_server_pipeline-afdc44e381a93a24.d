/root/repo/target/debug/deps/client_server_pipeline-afdc44e381a93a24.d: tests/client_server_pipeline.rs

/root/repo/target/debug/deps/client_server_pipeline-afdc44e381a93a24: tests/client_server_pipeline.rs

tests/client_server_pipeline.rs:
