/root/repo/target/debug/deps/figures_shape-fa20836a8e28c6fa.d: tests/figures_shape.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_shape-fa20836a8e28c6fa.rmeta: tests/figures_shape.rs Cargo.toml

tests/figures_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
