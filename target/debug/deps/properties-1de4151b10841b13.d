/root/repo/target/debug/deps/properties-1de4151b10841b13.d: crates/ckks-math/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1de4151b10841b13.rmeta: crates/ckks-math/tests/properties.rs

crates/ckks-math/tests/properties.rs:
