/root/repo/target/debug/deps/parpool-56179a7d442eb42d.d: vendor/parpool/src/lib.rs

/root/repo/target/debug/deps/libparpool-56179a7d442eb42d.rlib: vendor/parpool/src/lib.rs

/root/repo/target/debug/deps/libparpool-56179a7d442eb42d.rmeta: vendor/parpool/src/lib.rs

vendor/parpool/src/lib.rs:
