/root/repo/target/debug/deps/client_server_pipeline-2f51ee5a4407ae81.d: tests/client_server_pipeline.rs

/root/repo/target/debug/deps/libclient_server_pipeline-2f51ee5a4407ae81.rmeta: tests/client_server_pipeline.rs

tests/client_server_pipeline.rs:
