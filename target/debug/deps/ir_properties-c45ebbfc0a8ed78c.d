/root/repo/target/debug/deps/ir_properties-c45ebbfc0a8ed78c.d: tests/ir_properties.rs

/root/repo/target/debug/deps/ir_properties-c45ebbfc0a8ed78c: tests/ir_properties.rs

tests/ir_properties.rs:
