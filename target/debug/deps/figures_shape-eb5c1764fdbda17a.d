/root/repo/target/debug/deps/figures_shape-eb5c1764fdbda17a.d: tests/figures_shape.rs

/root/repo/target/debug/deps/figures_shape-eb5c1764fdbda17a: tests/figures_shape.rs

tests/figures_shape.rs:
