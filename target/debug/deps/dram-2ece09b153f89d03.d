/root/repo/target/debug/deps/dram-2ece09b153f89d03.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/debug/deps/dram-2ece09b153f89d03: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
