/root/repo/target/debug/deps/pim-fd257db7b0f0d957.d: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs Cargo.toml

/root/repo/target/debug/deps/libpim-fd257db7b0f0d957.rmeta: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs Cargo.toml

crates/pim/src/lib.rs:
crates/pim/src/bankexec.rs:
crates/pim/src/device.rs:
crates/pim/src/error.rs:
crates/pim/src/exec.rs:
crates/pim/src/fault.rs:
crates/pim/src/isa.rs:
crates/pim/src/layout.rs:
crates/pim/src/mmac.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
