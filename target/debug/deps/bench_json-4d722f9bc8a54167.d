/root/repo/target/debug/deps/bench_json-4d722f9bc8a54167.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/bench_json-4d722f9bc8a54167: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
