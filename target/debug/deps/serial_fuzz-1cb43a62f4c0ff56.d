/root/repo/target/debug/deps/serial_fuzz-1cb43a62f4c0ff56.d: tests/serial_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libserial_fuzz-1cb43a62f4c0ff56.rmeta: tests/serial_fuzz.rs Cargo.toml

tests/serial_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
