/root/repo/target/debug/deps/workloads-011282723443e987.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libworkloads-011282723443e987.rlib: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libworkloads-011282723443e987.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
