/root/repo/target/debug/deps/serial_fuzz-901b0b84a5187ba6.d: tests/serial_fuzz.rs

/root/repo/target/debug/deps/serial_fuzz-901b0b84a5187ba6: tests/serial_fuzz.rs

tests/serial_fuzz.rs:
