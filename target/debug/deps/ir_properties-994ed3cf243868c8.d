/root/repo/target/debug/deps/ir_properties-994ed3cf243868c8.d: tests/ir_properties.rs

/root/repo/target/debug/deps/libir_properties-994ed3cf243868c8.rmeta: tests/ir_properties.rs

tests/ir_properties.rs:
