/root/repo/target/debug/deps/pim_functional_equivalence-bc9c35847aa61c41.d: tests/pim_functional_equivalence.rs

/root/repo/target/debug/deps/libpim_functional_equivalence-bc9c35847aa61c41.rmeta: tests/pim_functional_equivalence.rs

tests/pim_functional_equivalence.rs:
