/root/repo/target/debug/deps/anaheim-a86cfeb883da2ffe.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim-a86cfeb883da2ffe.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
