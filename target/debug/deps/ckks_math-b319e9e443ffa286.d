/root/repo/target/debug/deps/ckks_math-b319e9e443ffa286.d: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libckks_math-b319e9e443ffa286.rmeta: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs Cargo.toml

crates/ckks-math/src/lib.rs:
crates/ckks-math/src/modulus.rs:
crates/ckks-math/src/ntt.rs:
crates/ckks-math/src/poly.rs:
crates/ckks-math/src/pool.rs:
crates/ckks-math/src/prime.rs:
crates/ckks-math/src/rns.rs:
crates/ckks-math/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
