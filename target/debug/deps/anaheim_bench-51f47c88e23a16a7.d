/root/repo/target/debug/deps/anaheim_bench-51f47c88e23a16a7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libanaheim_bench-51f47c88e23a16a7.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
