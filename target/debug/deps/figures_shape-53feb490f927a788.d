/root/repo/target/debug/deps/figures_shape-53feb490f927a788.d: tests/figures_shape.rs

/root/repo/target/debug/deps/libfigures_shape-53feb490f927a788.rmeta: tests/figures_shape.rs

tests/figures_shape.rs:
