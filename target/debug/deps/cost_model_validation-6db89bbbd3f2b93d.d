/root/repo/target/debug/deps/cost_model_validation-6db89bbbd3f2b93d.d: tests/cost_model_validation.rs

/root/repo/target/debug/deps/libcost_model_validation-6db89bbbd3f2b93d.rmeta: tests/cost_model_validation.rs

tests/cost_model_validation.rs:
