/root/repo/target/debug/deps/keyswitch-c36b0dfc6aa1a23f.d: crates/bench/benches/keyswitch.rs

/root/repo/target/debug/deps/libkeyswitch-c36b0dfc6aa1a23f.rmeta: crates/bench/benches/keyswitch.rs

crates/bench/benches/keyswitch.rs:
