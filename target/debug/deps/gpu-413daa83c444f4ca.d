/root/repo/target/debug/deps/gpu-413daa83c444f4ca.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/libgpu-413daa83c444f4ca.rlib: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/libgpu-413daa83c444f4ca.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/model.rs:
