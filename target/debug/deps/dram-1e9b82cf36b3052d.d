/root/repo/target/debug/deps/dram-1e9b82cf36b3052d.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs Cargo.toml

/root/repo/target/debug/deps/libdram-1e9b82cf36b3052d.rmeta: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
