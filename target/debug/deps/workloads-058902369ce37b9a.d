/root/repo/target/debug/deps/workloads-058902369ce37b9a.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-058902369ce37b9a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
