/root/repo/target/debug/deps/pim_functional_equivalence-f88287fca3b9b4a6.d: tests/pim_functional_equivalence.rs

/root/repo/target/debug/deps/pim_functional_equivalence-f88287fca3b9b4a6: tests/pim_functional_equivalence.rs

tests/pim_functional_equivalence.rs:
