/root/repo/target/debug/deps/anaheim_bench-161cd78172b890a2.d: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim_bench-161cd78172b890a2.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
