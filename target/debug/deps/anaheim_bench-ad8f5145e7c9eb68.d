/root/repo/target/debug/deps/anaheim_bench-ad8f5145e7c9eb68.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/anaheim_bench-ad8f5145e7c9eb68: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
