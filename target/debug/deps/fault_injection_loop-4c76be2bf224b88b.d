/root/repo/target/debug/deps/fault_injection_loop-4c76be2bf224b88b.d: tests/fault_injection_loop.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection_loop-4c76be2bf224b88b.rmeta: tests/fault_injection_loop.rs Cargo.toml

tests/fault_injection_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
