/root/repo/target/debug/deps/ntt-c9a4c8e2b42e1fca.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-c9a4c8e2b42e1fca.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
