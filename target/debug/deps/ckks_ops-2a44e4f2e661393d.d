/root/repo/target/debug/deps/ckks_ops-2a44e4f2e661393d.d: crates/bench/benches/ckks_ops.rs

/root/repo/target/debug/deps/ckks_ops-2a44e4f2e661393d: crates/bench/benches/ckks_ops.rs

crates/bench/benches/ckks_ops.rs:
