/root/repo/target/debug/deps/workloads-0453f771504e1376.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-0453f771504e1376.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
