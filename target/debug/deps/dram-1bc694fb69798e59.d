/root/repo/target/debug/deps/dram-1bc694fb69798e59.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/debug/deps/libdram-1bc694fb69798e59.rlib: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/debug/deps/libdram-1bc694fb69798e59.rmeta: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
