/root/repo/target/debug/deps/fault_injection_loop-97df07819783e304.d: tests/fault_injection_loop.rs

/root/repo/target/debug/deps/fault_injection_loop-97df07819783e304: tests/fault_injection_loop.rs

tests/fault_injection_loop.rs:
