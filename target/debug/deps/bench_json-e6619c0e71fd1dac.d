/root/repo/target/debug/deps/bench_json-e6619c0e71fd1dac.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/debug/deps/bench_json-e6619c0e71fd1dac: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
