/root/repo/target/debug/deps/cost_model_validation-21f30b9f89355b25.d: tests/cost_model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcost_model_validation-21f30b9f89355b25.rmeta: tests/cost_model_validation.rs Cargo.toml

tests/cost_model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
