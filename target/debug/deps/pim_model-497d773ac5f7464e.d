/root/repo/target/debug/deps/pim_model-497d773ac5f7464e.d: crates/bench/benches/pim_model.rs

/root/repo/target/debug/deps/pim_model-497d773ac5f7464e: crates/bench/benches/pim_model.rs

crates/bench/benches/pim_model.rs:
