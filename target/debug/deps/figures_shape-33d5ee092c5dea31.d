/root/repo/target/debug/deps/figures_shape-33d5ee092c5dea31.d: tests/figures_shape.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_shape-33d5ee092c5dea31.rmeta: tests/figures_shape.rs Cargo.toml

tests/figures_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
