/root/repo/target/debug/deps/figures-f0fbc3f62a3821db.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-f0fbc3f62a3821db.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
