/root/repo/target/debug/deps/random_circuits-7f66e0bee8579345.d: tests/random_circuits.rs Cargo.toml

/root/repo/target/debug/deps/librandom_circuits-7f66e0bee8579345.rmeta: tests/random_circuits.rs Cargo.toml

tests/random_circuits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
