/root/repo/target/debug/deps/keyswitch-be80f861566082f1.d: crates/bench/benches/keyswitch.rs

/root/repo/target/debug/deps/keyswitch-be80f861566082f1: crates/bench/benches/keyswitch.rs

crates/bench/benches/keyswitch.rs:
