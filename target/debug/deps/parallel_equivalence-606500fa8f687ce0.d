/root/repo/target/debug/deps/parallel_equivalence-606500fa8f687ce0.d: tests/parallel_equivalence.rs

/root/repo/target/debug/deps/parallel_equivalence-606500fa8f687ce0: tests/parallel_equivalence.rs

tests/parallel_equivalence.rs:
