/root/repo/target/debug/deps/pim_functional_equivalence-13823f5c9d1efb27.d: tests/pim_functional_equivalence.rs

/root/repo/target/debug/deps/pim_functional_equivalence-13823f5c9d1efb27: tests/pim_functional_equivalence.rs

tests/pim_functional_equivalence.rs:
