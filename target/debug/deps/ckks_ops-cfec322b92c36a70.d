/root/repo/target/debug/deps/ckks_ops-cfec322b92c36a70.d: crates/bench/benches/ckks_ops.rs Cargo.toml

/root/repo/target/debug/deps/libckks_ops-cfec322b92c36a70.rmeta: crates/bench/benches/ckks_ops.rs Cargo.toml

crates/bench/benches/ckks_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
