/root/repo/target/debug/deps/figures_shape-fbb4403497f58ed7.d: tests/figures_shape.rs

/root/repo/target/debug/deps/figures_shape-fbb4403497f58ed7: tests/figures_shape.rs

tests/figures_shape.rs:
