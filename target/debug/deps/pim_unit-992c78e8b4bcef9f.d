/root/repo/target/debug/deps/pim_unit-992c78e8b4bcef9f.d: crates/bench/benches/pim_unit.rs Cargo.toml

/root/repo/target/debug/deps/libpim_unit-992c78e8b4bcef9f.rmeta: crates/bench/benches/pim_unit.rs Cargo.toml

crates/bench/benches/pim_unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
