/root/repo/target/debug/deps/pim_model-fc9acfd2f92fa847.d: crates/bench/benches/pim_model.rs

/root/repo/target/debug/deps/libpim_model-fc9acfd2f92fa847.rmeta: crates/bench/benches/pim_model.rs

crates/bench/benches/pim_model.rs:
