/root/repo/target/debug/deps/gpu-09a9432c9488bac8.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/gpu-09a9432c9488bac8: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/model.rs:
