/root/repo/target/debug/deps/pim_unit-3011da732f4a1de8.d: crates/bench/benches/pim_unit.rs Cargo.toml

/root/repo/target/debug/deps/libpim_unit-3011da732f4a1de8.rmeta: crates/bench/benches/pim_unit.rs Cargo.toml

crates/bench/benches/pim_unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
