/root/repo/target/debug/deps/ckks-8313462591bfe582.d: crates/ckks/src/lib.rs crates/ckks/src/bootstrap.rs crates/ckks/src/chebyshev.rs crates/ckks/src/ciphertext.rs crates/ckks/src/compare.rs crates/ckks/src/complex.rs crates/ckks/src/context.rs crates/ckks/src/encoding.rs crates/ckks/src/eval.rs crates/ckks/src/keys.rs crates/ckks/src/keyswitch.rs crates/ckks/src/lintrans.rs crates/ckks/src/matrix.rs crates/ckks/src/noise.rs crates/ckks/src/opcount.rs crates/ckks/src/params.rs crates/ckks/src/polyeval.rs crates/ckks/src/serial.rs crates/ckks/src/slots.rs crates/ckks/src/specialfft.rs

/root/repo/target/debug/deps/libckks-8313462591bfe582.rlib: crates/ckks/src/lib.rs crates/ckks/src/bootstrap.rs crates/ckks/src/chebyshev.rs crates/ckks/src/ciphertext.rs crates/ckks/src/compare.rs crates/ckks/src/complex.rs crates/ckks/src/context.rs crates/ckks/src/encoding.rs crates/ckks/src/eval.rs crates/ckks/src/keys.rs crates/ckks/src/keyswitch.rs crates/ckks/src/lintrans.rs crates/ckks/src/matrix.rs crates/ckks/src/noise.rs crates/ckks/src/opcount.rs crates/ckks/src/params.rs crates/ckks/src/polyeval.rs crates/ckks/src/serial.rs crates/ckks/src/slots.rs crates/ckks/src/specialfft.rs

/root/repo/target/debug/deps/libckks-8313462591bfe582.rmeta: crates/ckks/src/lib.rs crates/ckks/src/bootstrap.rs crates/ckks/src/chebyshev.rs crates/ckks/src/ciphertext.rs crates/ckks/src/compare.rs crates/ckks/src/complex.rs crates/ckks/src/context.rs crates/ckks/src/encoding.rs crates/ckks/src/eval.rs crates/ckks/src/keys.rs crates/ckks/src/keyswitch.rs crates/ckks/src/lintrans.rs crates/ckks/src/matrix.rs crates/ckks/src/noise.rs crates/ckks/src/opcount.rs crates/ckks/src/params.rs crates/ckks/src/polyeval.rs crates/ckks/src/serial.rs crates/ckks/src/slots.rs crates/ckks/src/specialfft.rs

crates/ckks/src/lib.rs:
crates/ckks/src/bootstrap.rs:
crates/ckks/src/chebyshev.rs:
crates/ckks/src/ciphertext.rs:
crates/ckks/src/compare.rs:
crates/ckks/src/complex.rs:
crates/ckks/src/context.rs:
crates/ckks/src/encoding.rs:
crates/ckks/src/eval.rs:
crates/ckks/src/keys.rs:
crates/ckks/src/keyswitch.rs:
crates/ckks/src/lintrans.rs:
crates/ckks/src/matrix.rs:
crates/ckks/src/noise.rs:
crates/ckks/src/opcount.rs:
crates/ckks/src/params.rs:
crates/ckks/src/polyeval.rs:
crates/ckks/src/serial.rs:
crates/ckks/src/slots.rs:
crates/ckks/src/specialfft.rs:
