/root/repo/target/debug/deps/anaheim-31a7168f269871e2.d: src/lib.rs

/root/repo/target/debug/deps/anaheim-31a7168f269871e2: src/lib.rs

src/lib.rs:
