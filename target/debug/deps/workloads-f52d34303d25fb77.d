/root/repo/target/debug/deps/workloads-f52d34303d25fb77.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/workloads-f52d34303d25fb77: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
