/root/repo/target/debug/deps/figures-88b22c50242048d4.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-88b22c50242048d4.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
