/root/repo/target/debug/deps/ntt-e966a86910337124.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-e966a86910337124.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
