/root/repo/target/debug/deps/ntt-34504fbf5e98f1e2.d: crates/bench/benches/ntt.rs

/root/repo/target/debug/deps/libntt-34504fbf5e98f1e2.rmeta: crates/bench/benches/ntt.rs

crates/bench/benches/ntt.rs:
