/root/repo/target/debug/deps/anaheim_bench-96e78f56ba72c2b7.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/anaheim_bench-96e78f56ba72c2b7: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
