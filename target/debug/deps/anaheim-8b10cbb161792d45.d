/root/repo/target/debug/deps/anaheim-8b10cbb161792d45.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim-8b10cbb161792d45.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
