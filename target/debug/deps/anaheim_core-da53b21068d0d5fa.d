/root/repo/target/debug/deps/anaheim_core-da53b21068d0d5fa.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim_core-da53b21068d0d5fa.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/ir.rs:
crates/core/src/params.rs:
crates/core/src/passes.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
