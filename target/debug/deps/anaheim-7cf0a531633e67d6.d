/root/repo/target/debug/deps/anaheim-7cf0a531633e67d6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libanaheim-7cf0a531633e67d6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
