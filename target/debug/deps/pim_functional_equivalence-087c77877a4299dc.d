/root/repo/target/debug/deps/pim_functional_equivalence-087c77877a4299dc.d: tests/pim_functional_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libpim_functional_equivalence-087c77877a4299dc.rmeta: tests/pim_functional_equivalence.rs Cargo.toml

tests/pim_functional_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
