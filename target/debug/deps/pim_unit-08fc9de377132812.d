/root/repo/target/debug/deps/pim_unit-08fc9de377132812.d: crates/bench/benches/pim_unit.rs

/root/repo/target/debug/deps/libpim_unit-08fc9de377132812.rmeta: crates/bench/benches/pim_unit.rs

crates/bench/benches/pim_unit.rs:
