/root/repo/target/debug/deps/pim_model-5d7ae5c7f9b86d4e.d: crates/bench/benches/pim_model.rs Cargo.toml

/root/repo/target/debug/deps/libpim_model-5d7ae5c7f9b86d4e.rmeta: crates/bench/benches/pim_model.rs Cargo.toml

crates/bench/benches/pim_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
