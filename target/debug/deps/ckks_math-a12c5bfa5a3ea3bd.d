/root/repo/target/debug/deps/ckks_math-a12c5bfa5a3ea3bd.d: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

/root/repo/target/debug/deps/libckks_math-a12c5bfa5a3ea3bd.rlib: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

/root/repo/target/debug/deps/libckks_math-a12c5bfa5a3ea3bd.rmeta: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

crates/ckks-math/src/lib.rs:
crates/ckks-math/src/modulus.rs:
crates/ckks-math/src/ntt.rs:
crates/ckks-math/src/poly.rs:
crates/ckks-math/src/pool.rs:
crates/ckks-math/src/prime.rs:
crates/ckks-math/src/rns.rs:
crates/ckks-math/src/sampling.rs:
