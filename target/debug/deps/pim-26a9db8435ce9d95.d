/root/repo/target/debug/deps/pim-26a9db8435ce9d95.d: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/debug/deps/pim-26a9db8435ce9d95: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

crates/pim/src/lib.rs:
crates/pim/src/bankexec.rs:
crates/pim/src/device.rs:
crates/pim/src/error.rs:
crates/pim/src/exec.rs:
crates/pim/src/fault.rs:
crates/pim/src/isa.rs:
crates/pim/src/layout.rs:
crates/pim/src/mmac.rs:
