/root/repo/target/debug/deps/cost_model_validation-d99f11db8e5d752c.d: tests/cost_model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcost_model_validation-d99f11db8e5d752c.rmeta: tests/cost_model_validation.rs Cargo.toml

tests/cost_model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
