/root/repo/target/debug/deps/fault_injection_loop-517e68d048aca9a8.d: tests/fault_injection_loop.rs

/root/repo/target/debug/deps/libfault_injection_loop-517e68d048aca9a8.rmeta: tests/fault_injection_loop.rs

tests/fault_injection_loop.rs:
