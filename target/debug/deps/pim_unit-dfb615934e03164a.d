/root/repo/target/debug/deps/pim_unit-dfb615934e03164a.d: crates/bench/benches/pim_unit.rs

/root/repo/target/debug/deps/pim_unit-dfb615934e03164a: crates/bench/benches/pim_unit.rs

crates/bench/benches/pim_unit.rs:
