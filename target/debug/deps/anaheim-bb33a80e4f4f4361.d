/root/repo/target/debug/deps/anaheim-bb33a80e4f4f4361.d: src/lib.rs

/root/repo/target/debug/deps/anaheim-bb33a80e4f4f4361: src/lib.rs

src/lib.rs:
