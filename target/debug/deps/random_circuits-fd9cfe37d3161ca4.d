/root/repo/target/debug/deps/random_circuits-fd9cfe37d3161ca4.d: tests/random_circuits.rs

/root/repo/target/debug/deps/random_circuits-fd9cfe37d3161ca4: tests/random_circuits.rs

tests/random_circuits.rs:
