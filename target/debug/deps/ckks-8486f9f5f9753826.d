/root/repo/target/debug/deps/ckks-8486f9f5f9753826.d: crates/ckks/src/lib.rs crates/ckks/src/bootstrap.rs crates/ckks/src/chebyshev.rs crates/ckks/src/ciphertext.rs crates/ckks/src/compare.rs crates/ckks/src/complex.rs crates/ckks/src/context.rs crates/ckks/src/encoding.rs crates/ckks/src/eval.rs crates/ckks/src/keys.rs crates/ckks/src/keyswitch.rs crates/ckks/src/lintrans.rs crates/ckks/src/matrix.rs crates/ckks/src/noise.rs crates/ckks/src/opcount.rs crates/ckks/src/params.rs crates/ckks/src/polyeval.rs crates/ckks/src/serial.rs crates/ckks/src/slots.rs crates/ckks/src/specialfft.rs Cargo.toml

/root/repo/target/debug/deps/libckks-8486f9f5f9753826.rmeta: crates/ckks/src/lib.rs crates/ckks/src/bootstrap.rs crates/ckks/src/chebyshev.rs crates/ckks/src/ciphertext.rs crates/ckks/src/compare.rs crates/ckks/src/complex.rs crates/ckks/src/context.rs crates/ckks/src/encoding.rs crates/ckks/src/eval.rs crates/ckks/src/keys.rs crates/ckks/src/keyswitch.rs crates/ckks/src/lintrans.rs crates/ckks/src/matrix.rs crates/ckks/src/noise.rs crates/ckks/src/opcount.rs crates/ckks/src/params.rs crates/ckks/src/polyeval.rs crates/ckks/src/serial.rs crates/ckks/src/slots.rs crates/ckks/src/specialfft.rs Cargo.toml

crates/ckks/src/lib.rs:
crates/ckks/src/bootstrap.rs:
crates/ckks/src/chebyshev.rs:
crates/ckks/src/ciphertext.rs:
crates/ckks/src/compare.rs:
crates/ckks/src/complex.rs:
crates/ckks/src/context.rs:
crates/ckks/src/encoding.rs:
crates/ckks/src/eval.rs:
crates/ckks/src/keys.rs:
crates/ckks/src/keyswitch.rs:
crates/ckks/src/lintrans.rs:
crates/ckks/src/matrix.rs:
crates/ckks/src/noise.rs:
crates/ckks/src/opcount.rs:
crates/ckks/src/params.rs:
crates/ckks/src/polyeval.rs:
crates/ckks/src/serial.rs:
crates/ckks/src/slots.rs:
crates/ckks/src/specialfft.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
