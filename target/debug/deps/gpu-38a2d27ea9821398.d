/root/repo/target/debug/deps/gpu-38a2d27ea9821398.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/debug/deps/libgpu-38a2d27ea9821398.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/model.rs:
