/root/repo/target/debug/deps/figures-9616962310d09318.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9616962310d09318: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
