/root/repo/target/debug/deps/dram-15c2e0f6b9097794.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/debug/deps/libdram-15c2e0f6b9097794.rmeta: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
