/root/repo/target/debug/deps/serial_fuzz-7abe9117668305ab.d: tests/serial_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libserial_fuzz-7abe9117668305ab.rmeta: tests/serial_fuzz.rs Cargo.toml

tests/serial_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
