/root/repo/target/debug/deps/anaheim_core-d5468955a0463de9.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/debug/deps/libanaheim_core-d5468955a0463de9.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/debug/deps/libanaheim_core-d5468955a0463de9.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/ir.rs:
crates/core/src/params.rs:
crates/core/src/passes.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
