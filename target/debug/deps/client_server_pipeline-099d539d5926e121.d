/root/repo/target/debug/deps/client_server_pipeline-099d539d5926e121.d: tests/client_server_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libclient_server_pipeline-099d539d5926e121.rmeta: tests/client_server_pipeline.rs Cargo.toml

tests/client_server_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
