/root/repo/target/debug/deps/bench_json-8261352c51106a70.d: crates/bench/src/bin/bench_json.rs Cargo.toml

/root/repo/target/debug/deps/libbench_json-8261352c51106a70.rmeta: crates/bench/src/bin/bench_json.rs Cargo.toml

crates/bench/src/bin/bench_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
