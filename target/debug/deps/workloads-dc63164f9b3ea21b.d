/root/repo/target/debug/deps/workloads-dc63164f9b3ea21b.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libworkloads-dc63164f9b3ea21b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
