/root/repo/target/debug/deps/figures-4cdda313cab2f832.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-4cdda313cab2f832.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
