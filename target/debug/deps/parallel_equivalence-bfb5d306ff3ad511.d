/root/repo/target/debug/deps/parallel_equivalence-bfb5d306ff3ad511.d: tests/parallel_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_equivalence-bfb5d306ff3ad511.rmeta: tests/parallel_equivalence.rs Cargo.toml

tests/parallel_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
