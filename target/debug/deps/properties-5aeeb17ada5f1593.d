/root/repo/target/debug/deps/properties-5aeeb17ada5f1593.d: crates/ckks-math/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5aeeb17ada5f1593.rmeta: crates/ckks-math/tests/properties.rs Cargo.toml

crates/ckks-math/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
