/root/repo/target/debug/deps/ir_properties-1aee921cec094066.d: tests/ir_properties.rs Cargo.toml

/root/repo/target/debug/deps/libir_properties-1aee921cec094066.rmeta: tests/ir_properties.rs Cargo.toml

tests/ir_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
