/root/repo/target/debug/deps/pim-e137d4ca1bb05189.d: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/debug/deps/libpim-e137d4ca1bb05189.rlib: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/debug/deps/libpim-e137d4ca1bb05189.rmeta: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

crates/pim/src/lib.rs:
crates/pim/src/bankexec.rs:
crates/pim/src/device.rs:
crates/pim/src/error.rs:
crates/pim/src/exec.rs:
crates/pim/src/fault.rs:
crates/pim/src/isa.rs:
crates/pim/src/layout.rs:
crates/pim/src/mmac.rs:
