/root/repo/target/debug/deps/fault_injection_loop-9896015e4a4b03c9.d: tests/fault_injection_loop.rs

/root/repo/target/debug/deps/fault_injection_loop-9896015e4a4b03c9: tests/fault_injection_loop.rs

tests/fault_injection_loop.rs:
