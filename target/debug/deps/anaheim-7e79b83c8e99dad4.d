/root/repo/target/debug/deps/anaheim-7e79b83c8e99dad4.d: src/lib.rs

/root/repo/target/debug/deps/libanaheim-7e79b83c8e99dad4.rmeta: src/lib.rs

src/lib.rs:
