/root/repo/target/debug/deps/dram-8d2502c216de8145.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs Cargo.toml

/root/repo/target/debug/deps/libdram-8d2502c216de8145.rmeta: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
