/root/repo/target/debug/deps/ntt-dedf25f38e34996b.d: crates/bench/benches/ntt.rs

/root/repo/target/debug/deps/ntt-dedf25f38e34996b: crates/bench/benches/ntt.rs

crates/bench/benches/ntt.rs:
