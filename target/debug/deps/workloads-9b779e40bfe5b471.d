/root/repo/target/debug/deps/workloads-9b779e40bfe5b471.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libworkloads-9b779e40bfe5b471.rlib: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/debug/deps/libworkloads-9b779e40bfe5b471.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
