/root/repo/target/debug/deps/anaheim-9d6e64d9942d4322.d: src/lib.rs

/root/repo/target/debug/deps/libanaheim-9d6e64d9942d4322.rlib: src/lib.rs

/root/repo/target/debug/deps/libanaheim-9d6e64d9942d4322.rmeta: src/lib.rs

src/lib.rs:
