/root/repo/target/release/deps/anaheim_core-50ccda2a160f6d6e.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/release/deps/libanaheim_core-50ccda2a160f6d6e.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/release/deps/libanaheim_core-50ccda2a160f6d6e.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/ir.rs:
crates/core/src/params.rs:
crates/core/src/passes.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
