/root/repo/target/release/deps/pim-ce3b4e5ca6322b1b.d: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/release/deps/libpim-ce3b4e5ca6322b1b.rlib: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/release/deps/libpim-ce3b4e5ca6322b1b.rmeta: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

crates/pim/src/lib.rs:
crates/pim/src/bankexec.rs:
crates/pim/src/device.rs:
crates/pim/src/error.rs:
crates/pim/src/exec.rs:
crates/pim/src/fault.rs:
crates/pim/src/isa.rs:
crates/pim/src/layout.rs:
crates/pim/src/mmac.rs:
