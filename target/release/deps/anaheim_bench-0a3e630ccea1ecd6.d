/root/repo/target/release/deps/anaheim_bench-0a3e630ccea1ecd6.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libanaheim_bench-0a3e630ccea1ecd6.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libanaheim_bench-0a3e630ccea1ecd6.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
