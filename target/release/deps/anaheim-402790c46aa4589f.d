/root/repo/target/release/deps/anaheim-402790c46aa4589f.d: src/lib.rs

/root/repo/target/release/deps/libanaheim-402790c46aa4589f.rlib: src/lib.rs

/root/repo/target/release/deps/libanaheim-402790c46aa4589f.rmeta: src/lib.rs

src/lib.rs:
