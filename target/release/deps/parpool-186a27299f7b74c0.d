/root/repo/target/release/deps/parpool-186a27299f7b74c0.d: vendor/parpool/src/lib.rs

/root/repo/target/release/deps/libparpool-186a27299f7b74c0.rlib: vendor/parpool/src/lib.rs

/root/repo/target/release/deps/libparpool-186a27299f7b74c0.rmeta: vendor/parpool/src/lib.rs

vendor/parpool/src/lib.rs:
