/root/repo/target/release/deps/ckks_math-45b3929f9f9ef588.d: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

/root/repo/target/release/deps/libckks_math-45b3929f9f9ef588.rlib: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

/root/repo/target/release/deps/libckks_math-45b3929f9f9ef588.rmeta: crates/ckks-math/src/lib.rs crates/ckks-math/src/modulus.rs crates/ckks-math/src/ntt.rs crates/ckks-math/src/poly.rs crates/ckks-math/src/pool.rs crates/ckks-math/src/prime.rs crates/ckks-math/src/rns.rs crates/ckks-math/src/sampling.rs

crates/ckks-math/src/lib.rs:
crates/ckks-math/src/modulus.rs:
crates/ckks-math/src/ntt.rs:
crates/ckks-math/src/poly.rs:
crates/ckks-math/src/pool.rs:
crates/ckks-math/src/prime.rs:
crates/ckks-math/src/rns.rs:
crates/ckks-math/src/sampling.rs:
