/root/repo/target/release/deps/anaheim-5d9e176f6d4c55a1.d: src/lib.rs

/root/repo/target/release/deps/libanaheim-5d9e176f6d4c55a1.rlib: src/lib.rs

/root/repo/target/release/deps/libanaheim-5d9e176f6d4c55a1.rmeta: src/lib.rs

src/lib.rs:
