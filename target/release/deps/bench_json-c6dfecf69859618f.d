/root/repo/target/release/deps/bench_json-c6dfecf69859618f.d: crates/bench/src/bin/bench_json.rs

/root/repo/target/release/deps/bench_json-c6dfecf69859618f: crates/bench/src/bin/bench_json.rs

crates/bench/src/bin/bench_json.rs:
