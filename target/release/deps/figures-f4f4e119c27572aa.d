/root/repo/target/release/deps/figures-f4f4e119c27572aa.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f4f4e119c27572aa: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
