/root/repo/target/release/deps/anaheim_bench-d013be325516870a.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libanaheim_bench-d013be325516870a.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libanaheim_bench-d013be325516870a.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
