/root/repo/target/release/deps/figures-3515fb89d9b3744c.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-3515fb89d9b3744c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
