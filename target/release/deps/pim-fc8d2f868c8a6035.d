/root/repo/target/release/deps/pim-fc8d2f868c8a6035.d: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/release/deps/libpim-fc8d2f868c8a6035.rlib: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

/root/repo/target/release/deps/libpim-fc8d2f868c8a6035.rmeta: crates/pim/src/lib.rs crates/pim/src/bankexec.rs crates/pim/src/device.rs crates/pim/src/error.rs crates/pim/src/exec.rs crates/pim/src/fault.rs crates/pim/src/isa.rs crates/pim/src/layout.rs crates/pim/src/mmac.rs

crates/pim/src/lib.rs:
crates/pim/src/bankexec.rs:
crates/pim/src/device.rs:
crates/pim/src/error.rs:
crates/pim/src/exec.rs:
crates/pim/src/fault.rs:
crates/pim/src/isa.rs:
crates/pim/src/layout.rs:
crates/pim/src/mmac.rs:
