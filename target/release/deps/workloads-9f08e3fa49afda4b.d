/root/repo/target/release/deps/workloads-9f08e3fa49afda4b.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/libworkloads-9f08e3fa49afda4b.rlib: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/libworkloads-9f08e3fa49afda4b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
