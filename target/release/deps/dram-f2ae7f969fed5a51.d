/root/repo/target/release/deps/dram-f2ae7f969fed5a51.d: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/release/deps/libdram-f2ae7f969fed5a51.rlib: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

/root/repo/target/release/deps/libdram-f2ae7f969fed5a51.rmeta: crates/dram/src/lib.rs crates/dram/src/bank.rs crates/dram/src/config.rs crates/dram/src/energy.rs crates/dram/src/engine.rs crates/dram/src/regular.rs

crates/dram/src/lib.rs:
crates/dram/src/bank.rs:
crates/dram/src/config.rs:
crates/dram/src/energy.rs:
crates/dram/src/engine.rs:
crates/dram/src/regular.rs:
