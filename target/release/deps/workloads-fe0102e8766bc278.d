/root/repo/target/release/deps/workloads-fe0102e8766bc278.d: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/libworkloads-fe0102e8766bc278.rlib: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

/root/repo/target/release/deps/libworkloads-fe0102e8766bc278.rmeta: crates/workloads/src/lib.rs crates/workloads/src/catalog.rs crates/workloads/src/runner.rs

crates/workloads/src/lib.rs:
crates/workloads/src/catalog.rs:
crates/workloads/src/runner.rs:
