/root/repo/target/release/deps/anaheim_core-eccc09dcc306acf7.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/release/deps/libanaheim_core-eccc09dcc306acf7.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

/root/repo/target/release/deps/libanaheim_core-eccc09dcc306acf7.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/error.rs crates/core/src/framework.rs crates/core/src/ir.rs crates/core/src/params.rs crates/core/src/passes.rs crates/core/src/report.rs crates/core/src/schedule.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/error.rs:
crates/core/src/framework.rs:
crates/core/src/ir.rs:
crates/core/src/params.rs:
crates/core/src/passes.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
