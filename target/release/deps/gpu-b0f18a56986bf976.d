/root/repo/target/release/deps/gpu-b0f18a56986bf976.d: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/release/deps/libgpu-b0f18a56986bf976.rlib: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

/root/repo/target/release/deps/libgpu-b0f18a56986bf976.rmeta: crates/gpu/src/lib.rs crates/gpu/src/cache.rs crates/gpu/src/config.rs crates/gpu/src/kernel.rs crates/gpu/src/model.rs

crates/gpu/src/lib.rs:
crates/gpu/src/cache.rs:
crates/gpu/src/config.rs:
crates/gpu/src/kernel.rs:
crates/gpu/src/model.rs:
