/root/repo/target/release/examples/quickstart-5ea5ca6e33ff09d4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5ea5ca6e33ff09d4: examples/quickstart.rs

examples/quickstart.rs:
