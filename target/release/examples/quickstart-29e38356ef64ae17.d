/root/repo/target/release/examples/quickstart-29e38356ef64ae17.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-29e38356ef64ae17: examples/quickstart.rs

examples/quickstart.rs:
