/root/repo/target/release/examples/verify_scratch-a66f34d66f4a9573.d: examples/verify_scratch.rs

/root/repo/target/release/examples/verify_scratch-a66f34d66f4a9573: examples/verify_scratch.rs

examples/verify_scratch.rs:
