# anaheim parallelism tuning profile v1
par_eff = 1.000
dispatch_ns = 519.6
job_ns = 0.0
min_gain = 1.150
elementwise_per_elem_ns = 1.1205
ntt_per_elem_ns = 4.0119
bconv_per_elem_ns = 2.6068
automorphism_per_elem_ns = 1.3707
