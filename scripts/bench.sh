#!/usr/bin/env bash
# Microbenchmark driver for the limb-parallel hot path.
#
# Builds the `bench_json` binary in release mode and runs it from the repo
# root so BENCH_ckks.json / BENCH_pim.json land next to this script's parent.
#
# Usage: scripts/bench.sh [--quick]
#   --quick   small parameters + short thread sweep (CI smoke test)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p anaheim-bench --bin bench_json"
cargo build --release -q -p anaheim-bench --bin bench_json

echo "==> bench_json $*"
./target/release/bench_json "$@"
