#!/usr/bin/env bash
# Microbenchmark driver for the limb-parallel hot path.
#
# Builds the `bench_json` binary in release mode and runs it from the repo
# root so BENCH_ckks.json / BENCH_pim.json land next to this script's parent.
# Full runs also calibrate and commit BENCH_tune.profile (the measured
# `ckks_math::tune` parallelism profile — point ANAHEIM_PAR_PROFILE at it);
# quick runs write the profile to target/ so CI smoke-tests the calibration
# pass without touching the committed artifact.
#
# Usage: scripts/bench.sh [--quick]
#   --quick   small parameters + short thread sweep (CI smoke test)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p anaheim-bench --bin bench_json"
cargo build --release -q -p anaheim-bench --bin bench_json

tune_out="BENCH_tune.profile"
for arg in "$@"; do
  if [ "$arg" = "--quick" ]; then
    tune_out="target/tune_quick.profile"
  fi
done

echo "==> bench_json $* --tune-out $tune_out"
./target/release/bench_json "$@" --tune-out "$tune_out"
