#!/usr/bin/env bash
# Repository quality gate: formatting, lints (deny warnings), full tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> parallel equivalence (ANAHEIM_THREADS=1)"
ANAHEIM_THREADS=1 cargo test -q --test parallel_equivalence

echo "==> parallel equivalence (ANAHEIM_THREADS=8)"
ANAHEIM_THREADS=8 cargo test -q --test parallel_equivalence

echo "==> trace determinism (ANAHEIM_THREADS=1)"
ANAHEIM_THREADS=1 cargo test -q --test trace_determinism

echo "==> trace determinism (ANAHEIM_THREADS=8)"
ANAHEIM_THREADS=8 cargo test -q --test trace_determinism

echo "==> bench smoke (scripts/bench.sh --quick)"
scripts/bench.sh --quick

echo "==> serving chaos soak (scripts/soak.sh --quick)"
scripts/soak.sh --quick

echo "==> pipelined schedule gate (BENCH_ckks.json / BENCH_pim.json)"
python3 - <<'EOF'
import json, sys

def rows(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for r in data:
        if r["op"].startswith("sched_boot_"):
            out[r["op"].removeprefix("sched_boot_")] = r
    for mode in ("serial", "pipelined"):
        if mode not in out:
            sys.exit(f"{path}: missing sched_boot_{mode} row")
    return out

for path, bytes_key in (
    ("BENCH_ckks.json", "gpu_dram_bytes"),
    ("BENCH_pim.json", "pim_dram_bytes"),
):
    r = rows(path)
    s, p = r["serial"], r["pipelined"]
    # Work conservation: pipelining reorders virtual time, never work.
    for key in (bytes_key, "transitions", "segments"):
        if s[key] != p[key]:
            sys.exit(f"{path}: {key} differs between modes ({s[key]} vs {p[key]})")
    if s["overlap_ns"] != 0:
        sys.exit(f"{path}: serial mode reported overlap {s['overlap_ns']}")
    speedup = s["ns_per_op"] / p["ns_per_op"]
    if not 1.0 < speedup <= 1.35:
        sys.exit(f"{path}: pipelined Bootstrap speedup {speedup:.4f} outside (1.0, 1.35]")
    print(f"  {path}: speedup {speedup:.4f}x, overlap {p['overlap_ns']/1e6:.3f} ms — ok")
EOF

echo "All checks passed."
