#!/usr/bin/env bash
# Repository quality gate: formatting, lints (deny warnings), full tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> parallel equivalence (ANAHEIM_THREADS=1)"
ANAHEIM_THREADS=1 cargo test -q --test parallel_equivalence

echo "==> parallel equivalence (ANAHEIM_THREADS=8)"
ANAHEIM_THREADS=8 cargo test -q --test parallel_equivalence

echo "==> trace determinism (ANAHEIM_THREADS=1)"
ANAHEIM_THREADS=1 cargo test -q --test trace_determinism

echo "==> trace determinism (ANAHEIM_THREADS=8)"
ANAHEIM_THREADS=8 cargo test -q --test trace_determinism

echo "==> bench smoke (scripts/bench.sh --quick)"
scripts/bench.sh --quick

# Small-ring no-regression gate: below the paper's operating point the
# tuner must keep multi-thread rows from losing to the single-thread
# baseline (the pre-tuner hot path was up to 2.5x slower at n=1024 with 4
# threads). For every timed CKKS op at N <= 2^12, each multi-thread row's
# p50 must stay within SMALL_RING_MAX_RATIO of the 1-thread row, plus an
# absolute slack floor (5 µs) so ops in the tens-of-microseconds range
# aren't gated below the host's timing-noise floor — the regression this
# gate exists to catch was 2.5x, two orders of magnitude above the slack:
#   SMALL_RING_MAX_RATIO=1.10 SMALL_RING_SLACK_NS=8000 scripts/check.sh
echo "==> small-ring no-regression gate (BENCH_ckks.json)"
SMALL_RING_MAX_RATIO="${SMALL_RING_MAX_RATIO:-1.05}" \
SMALL_RING_SLACK_NS="${SMALL_RING_SLACK_NS:-5000}" \
python3 - <<'EOF'
import json, os, sys

ratio = float(os.environ["SMALL_RING_MAX_RATIO"])
slack = float(os.environ["SMALL_RING_SLACK_NS"])
with open("BENCH_ckks.json") as f:
    data = json.load(f)

def ns(r):
    return r.get("ns_per_op_p50", r["ns_per_op"])

base = {}
for r in data:
    if r["op"].startswith("sched_"):
        continue  # analytic model rows, no thread sweep
    if r["n"] <= 4096 and r["threads"] == 1:
        base[(r["op"], r["n"], r["limbs"])] = ns(r)

checked = 0
for r in data:
    if r["op"].startswith("sched_") or r["n"] > 4096 or r["threads"] == 1:
        continue
    key = (r["op"], r["n"], r["limbs"])
    if key not in base:
        sys.exit(f"BENCH_ckks.json: no 1-thread baseline for {key}")
    limit = max(base[key] * ratio, base[key] + slack)
    if ns(r) > limit:
        sys.exit(
            f"BENCH_ckks.json: {r['op']} n={r['n']} at {r['threads']} threads "
            f"regressed: {ns(r):.0f} ns vs 1-thread {base[key]:.0f} ns "
            f"(limit {limit:.0f} ns)"
        )
    checked += 1
if checked == 0:
    sys.exit("BENCH_ckks.json: small-ring gate matched no rows")
print(f"  {checked} multi-thread small-ring rows within {ratio}x (+{slack:.0f} ns) — ok")
EOF

echo "==> serving chaos soak (scripts/soak.sh --quick)"
scripts/soak.sh --quick

# Streaming fleet soak: the million-request memory-boundedness and
# determinism gate. Runs the sharded streaming soak twice — once per
# ANAHEIM_THREADS setting — under a peak-RSS budget (VmHWM, enforced by
# the binary) and byte-compares the per-shard snapshot text. Override
# the request count or budget via the environment for quicker local runs:
#   STREAM_SOAK_REQUESTS=50000 STREAM_SOAK_RSS_BUDGET_KB=65536 scripts/check.sh
STREAM_SOAK_REQUESTS="${STREAM_SOAK_REQUESTS:-1000000}"
STREAM_SOAK_RSS_BUDGET_KB="${STREAM_SOAK_RSS_BUDGET_KB:-262144}"
echo "==> streaming fleet soak ($STREAM_SOAK_REQUESTS requests, RSS budget ${STREAM_SOAK_RSS_BUDGET_KB} kB)"
snap_dir="$(mktemp -d)"
trap 'rm -rf "$snap_dir"' EXIT
for threads in 1 8; do
  echo "==> streaming fleet soak (ANAHEIM_THREADS=$threads)"
  ANAHEIM_THREADS="$threads" ./target/release/soak --stream \
    --requests "$STREAM_SOAK_REQUESTS" \
    --rss-budget-kb "$STREAM_SOAK_RSS_BUDGET_KB" \
    --snapshot-out "$snap_dir/snap-t$threads.txt"
done
if cmp -s "$snap_dir/snap-t1.txt" "$snap_dir/snap-t8.txt"; then
  echo "  per-shard snapshots byte-identical across ANAHEIM_THREADS=1/8 — ok"
else
  echo "FAIL: streaming soak snapshots differ across thread counts" >&2
  diff "$snap_dir/snap-t1.txt" "$snap_dir/snap-t8.txt" | head -20 >&2
  exit 1
fi

# Hedge-chaos gate: the GPU fault domain (stream stalls + transfer
# bit-flips) with deadline-budget cancellation and hedged re-execution on.
# The soak binary's streaming invariants already enforce exactly-one
# outcome per request, >=1 hedge launch/win, and >=1 cancellation under
# this config; here we additionally byte-compare the snapshot across
# thread counts and independently grep the artifact for nonzero hedge
# wins and cancellations, so a silently-neutered scenario cannot pass.
#   HEDGE_SOAK_REQUESTS=5000 scripts/check.sh
HEDGE_SOAK_REQUESTS="${HEDGE_SOAK_REQUESTS:-20000}"
echo "==> hedge-chaos streaming soak ($HEDGE_SOAK_REQUESTS requests)"
for threads in 1 8; do
  echo "==> hedge-chaos streaming soak (ANAHEIM_THREADS=$threads)"
  ANAHEIM_THREADS="$threads" ./target/release/soak --stream --hedge \
    --requests "$HEDGE_SOAK_REQUESTS" \
    --rss-budget-kb "$STREAM_SOAK_RSS_BUDGET_KB" \
    --snapshot-out "$snap_dir/hedge-t$threads.txt"
done
if cmp -s "$snap_dir/hedge-t1.txt" "$snap_dir/hedge-t8.txt"; then
  echo "  hedge-chaos snapshots byte-identical across ANAHEIM_THREADS=1/8 — ok"
else
  echo "FAIL: hedge-chaos snapshots differ across thread counts" >&2
  diff "$snap_dir/hedge-t1.txt" "$snap_dir/hedge-t8.txt" | head -20 >&2
  exit 1
fi
if ! grep -Eq 'hedges-won=[1-9]' "$snap_dir/hedge-t1.txt"; then
  echo "FAIL: hedge-chaos soak recorded zero hedge wins" >&2
  exit 1
fi
if ! grep -Eq 'cancelled=[1-9]' "$snap_dir/hedge-t1.txt"; then
  echo "FAIL: hedge-chaos soak recorded zero over-budget cancellations" >&2
  exit 1
fi
echo "  hedge wins and over-budget cancellations present in the snapshot — ok"

echo "==> pipelined schedule gate (BENCH_ckks.json / BENCH_pim.json)"
python3 - <<'EOF'
import json, sys

def rows(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for r in data:
        if r["op"].startswith("sched_boot_"):
            out[r["op"].removeprefix("sched_boot_")] = r
    for mode in ("serial", "pipelined"):
        if mode not in out:
            sys.exit(f"{path}: missing sched_boot_{mode} row")
    return out

for path, bytes_key in (
    ("BENCH_ckks.json", "gpu_dram_bytes"),
    ("BENCH_pim.json", "pim_dram_bytes"),
):
    r = rows(path)
    s, p = r["serial"], r["pipelined"]
    # Work conservation: pipelining reorders virtual time, never work.
    for key in (bytes_key, "transitions", "segments"):
        if s[key] != p[key]:
            sys.exit(f"{path}: {key} differs between modes ({s[key]} vs {p[key]})")
    if s["overlap_ns"] != 0:
        sys.exit(f"{path}: serial mode reported overlap {s['overlap_ns']}")
    speedup = s["ns_per_op"] / p["ns_per_op"]
    if not 1.0 < speedup <= 1.35:
        sys.exit(f"{path}: pipelined Bootstrap speedup {speedup:.4f} outside (1.0, 1.35]")
    print(f"  {path}: speedup {speedup:.4f}x, overlap {p['overlap_ns']/1e6:.3f} ms — ok")
EOF

# Batched-fleet gate: same-tenant batch serving over the two-shard fleet.
# The soak binary's streaming invariants already require >=1 amortized
# evaluation-key fetch and that the saved bytes reconcile with the
# per-shard hit bytes; here we additionally byte-compare the snapshot
# across thread counts and independently grep the artifact for a nonzero
# saving, so a silently-disabled batcher cannot pass.
#   BATCH_SOAK_REQUESTS=2000 scripts/check.sh
BATCH_SOAK_REQUESTS="${BATCH_SOAK_REQUESTS:-20000}"
echo "==> batched-fleet streaming soak ($BATCH_SOAK_REQUESTS requests)"
for threads in 1 8; do
  echo "==> batched-fleet streaming soak (ANAHEIM_THREADS=$threads)"
  ANAHEIM_THREADS="$threads" ./target/release/soak --stream --batch \
    --requests "$BATCH_SOAK_REQUESTS" \
    --rss-budget-kb "$STREAM_SOAK_RSS_BUDGET_KB" \
    --snapshot-out "$snap_dir/batch-t$threads.txt"
done
if cmp -s "$snap_dir/batch-t1.txt" "$snap_dir/batch-t8.txt"; then
  echo "  batched-fleet snapshots byte-identical across ANAHEIM_THREADS=1/8 — ok"
else
  echo "FAIL: batched-fleet snapshots differ across thread counts" >&2
  diff "$snap_dir/batch-t1.txt" "$snap_dir/batch-t8.txt" | head -20 >&2
  exit 1
fi
if ! grep -Eq 'saved-bytes=[1-9]' "$snap_dir/batch-t1.txt"; then
  echo "FAIL: batched-fleet soak amortized zero evaluation-key bytes" >&2
  exit 1
fi
echo "  evaluation-key bytes amortized in the snapshot — ok"

# Ordered-fleet gate: batch-aware dispatch ordering over the batched-fleet
# trace. The soak binary's streaming invariants already require >=1
# reorder and a nonzero lane credit; here we additionally byte-compare the
# snapshot across thread counts and grep the artifact for committed
# reorders, so a silently-disabled orderer cannot pass. The JSON gate
# below then compares the ordered-fleet row against the batched-fleet row.
#   ORDERED_SOAK_REQUESTS=2000 scripts/check.sh
ORDERED_SOAK_REQUESTS="${ORDERED_SOAK_REQUESTS:-20000}"
echo "==> ordered-fleet streaming soak ($ORDERED_SOAK_REQUESTS requests)"
for threads in 1 8; do
  echo "==> ordered-fleet streaming soak (ANAHEIM_THREADS=$threads)"
  ANAHEIM_THREADS="$threads" ./target/release/soak --stream --ordered \
    --requests "$ORDERED_SOAK_REQUESTS" \
    --rss-budget-kb "$STREAM_SOAK_RSS_BUDGET_KB" \
    --snapshot-out "$snap_dir/ordered-t$threads.txt"
done
if cmp -s "$snap_dir/ordered-t1.txt" "$snap_dir/ordered-t8.txt"; then
  echo "  ordered-fleet snapshots byte-identical across ANAHEIM_THREADS=1/8 — ok"
else
  echo "FAIL: ordered-fleet snapshots differ across thread counts" >&2
  diff "$snap_dir/ordered-t1.txt" "$snap_dir/ordered-t8.txt" | head -20 >&2
  exit 1
fi
if ! grep -Eq 'reorders=[1-9]' "$snap_dir/ordered-t1.txt"; then
  echo "FAIL: ordered-fleet soak committed zero reorders" >&2
  exit 1
fi
echo "  committed reorders present in the snapshot — ok"

# Evaluation-key traffic conservation gate (docs/KEYS.md): on every BENCH
# row carrying the evk split, cached plus missed bytes must equal the
# uncached total — the cache model reclassifies traffic, it never
# invents or loses bytes. The MinKS row must amortize something (that is
# the point of the single shared key), and the batched-fleet serving row's
# saved bytes must equal its hit bytes. The ordered-fleet row must convert
# the bytes it saves into a virtual-time win: at least as many bytes
# amortized as the plain overlay, strictly higher virtual_rps, and no new
# deadline misses.
echo "==> evaluation-key conservation gate (BENCH_ckks.json / BENCH_serving.json)"
python3 - <<'EOF'
import json, sys

with open("BENCH_ckks.json") as f:
    ckks = json.load(f)
rows = [r for r in ckks if "evk_uncached_bytes" in r]
if not any(r["op"].startswith("sched_evk_boot_") for r in rows):
    sys.exit("BENCH_ckks.json: no sched_evk_boot_* rows")
for r in rows:
    hit, miss, total = r["evk_hit_bytes"], r["evk_miss_bytes"], r["evk_uncached_bytes"]
    if hit + miss != total:
        sys.exit(
            f"BENCH_ckks.json: {r['op']}: hit {hit} + miss {miss} != uncached {total}"
        )
minks = [r for r in rows if r["op"] == "sched_evk_lintrans_minks"]
if not minks or minks[0]["evk_hit_bytes"] == 0:
    sys.exit("BENCH_ckks.json: MinKS row amortized nothing")
print(f"  {len(rows)} evk rows conserve bytes; MinKS amortized "
      f"{minks[0]['evk_hit_bytes']/1e6:.1f} MB — ok")

with open("BENCH_serving.json") as f:
    serving = json.load(f)
batched = [r for r in serving if r["scenario"] == "batched-fleet"]
if not batched:
    sys.exit("BENCH_serving.json: no batched-fleet row")
b = batched[0]
if b["evk_bytes_saved"] == 0:
    sys.exit("BENCH_serving.json: batched-fleet saved zero evk bytes")
if b["evk_bytes_saved"] != b["evk_hit_bytes"]:
    sys.exit(
        f"BENCH_serving.json: saved {b['evk_bytes_saved']} != hit {b['evk_hit_bytes']}"
    )
if b["evk_miss_bytes"] == 0:
    sys.exit("BENCH_serving.json: batch heads paid no fetches?")
print(f"  batched-fleet saved {b['evk_bytes_saved']/1e9:.1f} GB over "
      f"{b['batches']} batches, saved == hit — ok")

ordered = [r for r in serving if r["scenario"] == "ordered-fleet"]
if not ordered:
    sys.exit("BENCH_serving.json: no ordered-fleet row")
o = ordered[0]
if o["reorders"] == 0:
    sys.exit("BENCH_serving.json: ordered-fleet committed zero reorders")
if o["evk_saved_ns"] <= 0:
    sys.exit("BENCH_serving.json: ordered-fleet credited zero lane time")
if o["evk_bytes_saved"] < b["evk_bytes_saved"]:
    sys.exit(
        f"BENCH_serving.json: ordering amortized fewer bytes than the overlay "
        f"({o['evk_bytes_saved']} < {b['evk_bytes_saved']})"
    )
if o["virtual_rps"] <= b["virtual_rps"]:
    sys.exit(
        f"BENCH_serving.json: ordered-fleet virtual_rps {o['virtual_rps']} "
        f"does not beat batched-fleet {b['virtual_rps']}"
    )
if o["deadline_misses"] > b["deadline_misses"]:
    sys.exit(
        f"BENCH_serving.json: ordering minted deadline misses "
        f"({o['deadline_misses']} > {b['deadline_misses']})"
    )
print(f"  ordered-fleet: {o['reorders']} reorders ({o['reorder_denied_slack']} denied), "
      f"{o['evk_saved_ns']/1e6:.1f} ms credited, virtual_rps {o['virtual_rps']} > "
      f"{b['virtual_rps']}, misses {o['deadline_misses']} <= {b['deadline_misses']} — ok")
EOF

# Documentation integrity gate: every relative markdown link resolves, and
# every telemetry metric name declared in `core::telemetry::names` is
# documented in docs/METRICS.md — new metrics cannot land undocumented.
echo "==> documentation integrity gate (markdown links + metric names)"
python3 - <<'EOF'
import os, re, sys

docs = ["README.md", "DESIGN.md", "ROADMAP.md", "PAPER.md", "EXPERIMENTS.md"]
docs += [os.path.join("docs", f) for f in sorted(os.listdir("docs")) if f.endswith(".md")]
bad = []
checked = 0
for doc in docs:
    if not os.path.exists(doc):
        continue
    text = open(doc).read()
    # Strip fenced code blocks: links there are illustrative, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in re.findall(r"\]\(([^)#]+?)(?:#[^)]*)?\)", text):
        if re.match(r"[a-z+]+:", target):  # http:, https:, mailto:
            continue
        path = os.path.normpath(os.path.join(os.path.dirname(doc), target))
        checked += 1
        if not os.path.exists(path):
            bad.append(f"{doc}: broken link -> {target}")
if bad:
    sys.exit("\n".join(bad))
print(f"  {checked} relative links resolve — ok")

names = set(
    re.findall(r'"(anaheim_[a-z_]+)"', open("crates/core/src/telemetry.rs").read())
)
metrics_doc = open("docs/METRICS.md").read()
missing = sorted(n for n in names if n not in metrics_doc)
if missing:
    sys.exit("docs/METRICS.md: undocumented metrics: " + ", ".join(missing))
print(f"  {len(names)} telemetry metric names documented in docs/METRICS.md — ok")
EOF

echo "All checks passed."
