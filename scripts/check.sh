#!/usr/bin/env bash
# Repository quality gate: formatting, lints (deny warnings), full tests.
# Run from anywhere; operates on the workspace containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> parallel equivalence (ANAHEIM_THREADS=1)"
ANAHEIM_THREADS=1 cargo test -q --test parallel_equivalence

echo "==> parallel equivalence (ANAHEIM_THREADS=8)"
ANAHEIM_THREADS=8 cargo test -q --test parallel_equivalence

echo "==> trace determinism (ANAHEIM_THREADS=1)"
ANAHEIM_THREADS=1 cargo test -q --test trace_determinism

echo "==> trace determinism (ANAHEIM_THREADS=8)"
ANAHEIM_THREADS=8 cargo test -q --test trace_determinism

echo "==> bench smoke (scripts/bench.sh --quick)"
scripts/bench.sh --quick

echo "==> serving chaos soak (scripts/soak.sh --quick)"
scripts/soak.sh --quick

echo "All checks passed."
