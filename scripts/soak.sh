#!/usr/bin/env bash
# Chaos-soak driver for the serving layer.
#
# Builds the `soak` binary in release mode and replays a seeded fault
# schedule over a mixed-workload trace, checking the serving invariants
# (no panics, no deadline-expired request reported Ok, typed sheds,
# bounded queue) and — with --threads-check — that the whole outcome is
# bit-identical across ANAHEIM_THREADS settings.
#
# Usage: scripts/soak.sh [--quick] [--requests N] [--seed S] [--threads-check]
#                        [--stream] [--hedge] [--batch] [--ordered] [--shards N]
#                        [--snapshot-out FILE] [--trace-out FILE]
#                        [--metrics-out FILE] [--rss-budget-kb N]
#   --quick   200-request seeded soak with the determinism check; finishes
#             in seconds (what scripts/check.sh runs)
#   --stream  sharded bounded-memory streaming soak: lazy trace generation,
#             rendezvous-hash routing with replica failover, responses
#             checked and dropped as produced. --snapshot-out writes the
#             deterministic per-shard snapshot text (the artifact
#             scripts/check.sh byte-compares across ANAHEIM_THREADS);
#             --rss-budget-kb fails the run if peak RSS (VmHWM) exceeds
#             the budget. All flags forward to the soak binary.
#   --hedge   (with --stream) hedge-chaos scenario: GPU stream stalls and
#             transfer bit-flips on top of the fleet storm, with
#             deadline-budget cancellation and hedged re-execution on.
#             The invariants then also require >=1 hedge launch, >=1
#             hedge win, and >=1 over-budget cancellation.
#   --batch   (with --stream) batched-fleet scenario: same-tenant batch
#             serving on a small tenant pool; composes with --hedge into
#             the batch+hedge storm.
#   --ordered (with --stream) ordered-fleet scenario: batch-aware dispatch
#             ordering forms same-tenant runs under the slack budget and
#             credits saved evk fetches back to the lanes as virtual time.
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
for a in "${args[@]:-}"; do
  if [[ "$a" == "--quick" ]]; then
    args+=(--threads-check)
    break
  fi
done

echo "==> cargo build --release -p serving --bin soak"
cargo build --release -q -p serving --bin soak

echo "==> soak ${args[*]:-}"
./target/release/soak "${args[@]:-}"
