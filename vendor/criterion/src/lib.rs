//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of criterion its benches use: `criterion_group!`/
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup`
//! (`throughput`, `sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`.
//!
//! Measurement is intentionally simple — warm up briefly, run a fixed
//! sample of timed iterations, report the median per-iteration time — so
//! `cargo bench` produces indicative numbers without criterion's
//! statistical machinery or plotting. Numbers print one line per
//! benchmark: `group/name  time: <median> (<throughput>)`.

use std::fmt::Write as _;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut name = function_name.into();
        let _ = write!(name, "/{parameter}");
        Self { name }
    }
}

/// Times closures handed to `Bencher::iter`.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also used to size the per-sample iteration count so one
        // sample takes roughly a millisecond.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        ns[ns.len() / 2]
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        routine(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        routine(&mut bencher, input);
        self.report(&id.name, &bencher);
        self
    }

    fn report(&mut self, id: &str, bencher: &Bencher) {
        let ns = bencher.median_ns_per_iter();
        let mut line = format!("{}/{:<28} time: {:>12}", self.name, id, format_time(ns));
        if ns > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    let _ = write!(line, "   {:>10.1} Melem/s", n as f64 / ns * 1_000.0);
                }
                Some(Throughput::Bytes(n)) => {
                    let _ = write!(
                        line,
                        "   {:>10.1} MiB/s",
                        n as f64 / ns * 1e9 / (1 << 20) as f64
                    );
                }
                None => {}
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_count: 20,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        routine: R,
    ) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, routine);
        g.finish();
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(64));
        let mut acc = 0u64;
        g.bench_function("sum", |b| b.iter(|| acc = acc.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("param", 8), &8u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
        assert_eq!(c.benchmarks_run, 2);
    }
}
