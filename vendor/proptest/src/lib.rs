//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace vendors the slice of proptest it uses: the `proptest!` macro,
//! `Strategy` with `prop_map`/`boxed`, range/tuple/`Just`/`prop_oneof!`
//! strategies, `prop::collection::vec`, `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` deterministic
//! random cases (seeded from the test name and case index, so failures are
//! reproducible run-to-run). There is **no shrinking** — a failing case
//! reports its inputs' debug representation via the assertion message
//! instead. That is a deliberate simplification: the workspace uses
//! proptest for randomized coverage, not for minimal counterexamples.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                max_global_rejects: 20 * cases + 256,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic case RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary 64-bit value via SplitMix64.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next() | 1, next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }

        /// Unbiased uniform value in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "below(0)");
            let zone = u64::MAX - u64::MAX % span;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }

        /// Uniform value in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Drives the cases of one `proptest!` test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        seed_base: u64,
        passed: u32,
        rejected: u32,
        attempt: u64,
    }

    impl TestRunner {
        /// A runner for a named test.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                config,
                name,
                seed_base: h,
                passed: 0,
                rejected: 0,
                attempt: 0,
            }
        }

        /// Whether another case should run.
        pub fn more_cases(&self) -> bool {
            if self.rejected >= self.config.max_global_rejects {
                panic!(
                    "proptest {}: too many prop_assume! rejections ({})",
                    self.name, self.rejected
                );
            }
            self.passed < self.config.cases
        }

        /// The RNG for the next case.
        pub fn case_rng(&mut self) -> TestRng {
            self.attempt += 1;
            TestRng::seed_from_u64(self.seed_base.wrapping_add(self.attempt))
        }

        /// Records one case outcome; panics (failing the `#[test]`) on
        /// assertion failure.
        pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
            match outcome {
                Ok(()) => self.passed += 1,
                Err(TestCaseError::Reject(_)) => self.rejected += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest {} failed at case {} (attempt {}): {}",
                    self.name, self.passed, self.attempt, msg
                ),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates with `self`, then with the strategy `f` returns
        /// (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Discards generated values failing `pred` (retry with fresh
        /// draws, bounded).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// `prop_flat_map` adapter.
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// `prop_filter` adapter.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.source.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence)
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy (also what `prop_oneof!` arms become).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> std::fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice among type-erased strategies (`prop_oneof!`).
    #[derive(Debug)]
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds from the (non-empty) arm list.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Marker for `any::<T>()`.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only, spread over a wide dynamic range.
            let mag = rng.unit_f64() * 2.0 - 1.0;
            let exp = (rng.below(125) as i32) - 62;
            mag * (2.0f64).powi(exp)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors whose elements come from `element`, with `size` entries.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Module alias so `prop::collection::vec(...)` works after
/// `use proptest::prelude::*;`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The user-facing prelude.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic randomized `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            while runner.more_cases() {
                let mut case_rng = runner.case_rng();
                $(let $arg = {
                    let strat = $strat;
                    $crate::strategy::Strategy::new_value(&strat, &mut case_rng)
                };)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                runner.record(outcome);
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// `assert!` that fails the proptest case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that fails the proptest case with context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} != {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "{} ({:?} vs {:?})", format!($($fmt)*), lhs, rhs
        );
    }};
}

/// `assert_ne!` that fails the proptest case with context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: both sides equal {:?}", lhs);
    }};
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 5u64..10, b in -3i64..3, f in -0.5f64..0.5) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((-3..3).contains(&b));
            prop_assert!((-0.5..0.5).contains(&f));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(0u32..100, 8),
                         pick in prop_oneof![Just(1usize), Just(2), 3usize..5]) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!((1..5).contains(&pick));
        }

        #[test]
        fn map_and_assume(x in (0u32..50).prop_map(|v| v * 2), y in any::<bool>()) {
            prop_assume!(x != 4);
            prop_assert!(x % 2 == 0 && x < 100);
            let _ = y;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = TestRng::seed_from_u64(5);
        let mut r2 = TestRng::seed_from_u64(5);
        let s = prop::collection::vec(0u64..1000, 4);
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }
}
