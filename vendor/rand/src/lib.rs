//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses: a
//! seedable `StdRng`, the `Rng`/`RngCore`/`SeedableRng` traits with
//! `gen_range`/`gen_bool`/`gen`, and `seq::SliceRandom::shuffle`. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! high-quality, and more than adequate for tests and for the sampling in
//! `ckks-math` (which makes no claims of cryptographic security; see that
//! crate's documentation).
//!
//! The value *streams* differ from upstream `rand`; nothing in this
//! workspace depends on the exact stream, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased integer sampling via Lemire-style rejection on 64-bit words.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: draw until the value falls in the largest
    // multiple of `span` representable in 64 bits.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // 53 random mantissa bits → uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        f64::draw(self) < p
    }

    /// A value of the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Fills a byte slice (mirror of `RngCore::fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias used where upstream code asks for a "thread" RNG; deterministic
    /// here (seeded from a fixed constant), which is what reproducible
    /// simulation wants anyway.
    pub type ThreadRng = StdRng;
}

/// Returns a deterministic generator (this vendored subset has no OS
/// entropy source, and the workspace wants reproducibility).
pub fn thread_rng() -> rngs::ThreadRng {
    <rngs::StdRng as SeedableRng>::seed_from_u64(0x005E_ED0F_A17A_4E13)
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and choose on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// `rand::prelude` look-alike.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
