//! Offline, minimal scoped thread pool — an API-compatible subset of the
//! `rayon` idioms this workspace uses (`scope`/`spawn`, indexed parallel
//! loops, parallel map).
//!
//! The build environment cannot reach crates.io, so like `rand`/`proptest`/
//! `criterion` this crate is vendored in-tree. It implements exactly the
//! parallel shapes the CKKS/PIM hot paths need:
//!
//! - [`run`] / [`par_range`] — execute `n` independent index tasks;
//! - [`par_for_each_mut`] — mutate the elements of a slice in parallel;
//! - [`par_map`] — parallel map over a slice into a fresh `Vec`;
//! - [`scope`] — rayon-like scope collecting heterogeneous `spawn`s.
//!
//! # Scheduling
//!
//! One long-lived pool of parked workers is built lazily. Each parallel
//! section publishes a *job*: a type-erased `Fn(usize)` plus an atomic
//! cursor over `0..n`. Every participant (the calling thread always joins;
//! workers join up to the configured thread count) repeatedly *steals* the
//! next index from the shared bag until the bag is empty — a degenerate
//! work-stealing scheme with a single shared deque, which is the right
//! trade-off for the coarse, uniform limb/digit/bank tasks this workspace
//! runs (tens of microseconds each; queue contention is negligible).
//!
//! # Determinism
//!
//! Tasks must write disjoint outputs (the helpers guarantee this by
//! construction). Under that contract results are bit-identical for every
//! thread count, including 1 — which the workspace's
//! `parallel_equivalence` suite asserts end to end.
//!
//! # Configuration
//!
//! - `ANAHEIM_THREADS` (environment): thread count at first use; `1` means
//!   fully serial (no pool interaction at all).
//! - [`set_threads`]: runtime override, used by benchmarks and tests to
//!   sweep thread counts inside one process.
//!
//! Nested parallel sections (a parallel region entered from inside a pool
//! task, or while another job is in flight) degrade to serial inline
//! execution instead of deadlocking.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::mem::MaybeUninit;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::thread;

/// Hard cap on pool size; far above anything the simulator benefits from.
const MAX_POOL: usize = 64;

/// Workers always built, so tests can `set_threads(8)` on small machines.
const MIN_BUILT: usize = 8;

struct Job {
    /// Type-erased borrow of the caller's task closure. Only dereferenced
    /// for successfully claimed indices `< n`, all of which complete before
    /// the submitting call returns — so the borrow never outlives its
    /// referent.
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    /// Next index to claim.
    cursor: AtomicUsize,
    /// Indices not yet completed; the caller returns when this hits zero.
    pending: AtomicUsize,
    /// Workers that joined this job (the caller is participant zero).
    participants: AtomicUsize,
    /// Maximum worker participants (thread count minus the caller).
    max_workers: usize,
    /// First panic payload from any task, re-thrown on the calling thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: the raw task pointer is only dereferenced under the lifetime
// protocol documented on `Job::task`; all other fields are Send + Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct PoolState {
    job: Option<Arc<Job>>,
    epoch: u64,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Wakes workers when a new job is published.
    work_cv: Condvar,
    /// Wakes the caller when the last index of its job completes.
    done_cv: Condvar,
    built_workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();
static SPAWN: Once = Once::new();
/// 0 = unset (resolve from env/hardware on first read).
static ACTIVE_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn hardware_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

fn env_threads() -> Option<usize> {
    std::env::var("ANAHEIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, MAX_POOL))
}

fn built_workers() -> usize {
    hardware_threads()
        .max(env_threads().unwrap_or(0))
        .clamp(MIN_BUILT, MAX_POOL)
}

fn pool() -> &'static Pool {
    let p = POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            job: None,
            epoch: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        built_workers: built_workers(),
    });
    SPAWN.call_once(|| {
        // Workers beyond the caller: built - 1.
        for i in 0..p.built_workers.saturating_sub(1) {
            thread::Builder::new()
                .name(format!("parpool-{i}"))
                .spawn(|| worker_loop(POOL.get().expect("pool initialized")))
                .expect("spawning parpool worker");
        }
    });
    p
}

/// The effective thread count for parallel sections: the [`set_threads`]
/// override if present, else `ANAHEIM_THREADS`, else the hardware count.
pub fn num_threads() -> usize {
    match ACTIVE_THREADS.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(hardware_threads).min(MAX_POOL),
        n => n,
    }
}

/// Overrides the thread count at runtime (clamped to the built pool size).
/// Returns the effective value. `set_threads(1)` restores fully serial
/// execution; `set_threads(0)` resets to the environment default.
pub fn set_threads(n: usize) -> usize {
    let eff = if n == 0 {
        0
    } else {
        n.clamp(1, built_workers())
    };
    ACTIVE_THREADS.store(eff, Ordering::Relaxed);
    num_threads()
}

/// True on pool worker threads (parallel sections entered here run inline).
pub fn is_worker() -> bool {
    IS_WORKER.get()
}

fn worker_loop(pool: &'static Pool) {
    IS_WORKER.set(true);
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool lock");
            loop {
                if st.epoch != last_epoch {
                    if let Some(j) = &st.job {
                        last_epoch = st.epoch;
                        break j.clone();
                    }
                    // Job already retired; don't re-wake for this epoch.
                    last_epoch = st.epoch;
                }
                st = pool.work_cv.wait(st).expect("pool lock");
            }
        };
        if job.participants.fetch_add(1, Ordering::Relaxed) < job.max_workers {
            claim_loop(pool, &job);
        }
    }
}

fn claim_loop(pool: &Pool, job: &Job) {
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            return;
        }
        // SAFETY: index i was claimed, so the submitting call has not
        // returned yet and the closure is alive (see `Job::task`).
        let task = unsafe { &*job.task };
        let result = panic::catch_unwind(AssertUnwindSafe(|| task(i)));
        if let Err(payload) = result {
            let mut slot = job.panic.lock().expect("panic slot");
            slot.get_or_insert(payload);
        }
        if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last index done: wake the caller (lock pairs with its wait).
            let _guard = pool.state.lock().expect("pool lock");
            pool.done_cv.notify_all();
        }
    }
}

fn run_serial(n: usize, task: &(dyn Fn(usize) + Sync)) {
    for i in 0..n {
        task(i);
    }
}

/// Executes `task(0), …, task(n-1)` across the pool. Tasks must write
/// disjoint outputs. Falls back to inline serial execution when the thread
/// count is 1, `n < 2`, the caller is itself a pool worker, or another job
/// is already in flight.
pub fn run(n: usize, task: &(dyn Fn(usize) + Sync)) {
    let threads = num_threads();
    if threads <= 1 || n < 2 || is_worker() {
        run_serial(n, task);
        return;
    }
    let pool = pool();
    // Erase the task borrow's lifetime; `Job::task` documents the protocol
    // that keeps the dereferences inside the borrow's real lifetime.
    let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(task)
    };
    let job = Arc::new(Job {
        task: task_ptr,
        n,
        cursor: AtomicUsize::new(0),
        pending: AtomicUsize::new(n),
        participants: AtomicUsize::new(0),
        max_workers: threads - 1,
        panic: Mutex::new(None),
    });
    {
        let mut st = pool.state.lock().expect("pool lock");
        if st.job.is_some() {
            // Another thread's job is in flight; run inline rather than
            // queueing (keeps the pool single-job and deadlock-free).
            drop(st);
            run_serial(n, task);
            return;
        }
        st.job = Some(job.clone());
        st.epoch += 1;
        pool.work_cv.notify_all();
    }
    // The caller is always a participant.
    claim_loop(pool, &job);
    let mut st = pool.state.lock().expect("pool lock");
    while job.pending.load(Ordering::Acquire) != 0 {
        st = pool.done_cv.wait(st).expect("pool lock");
    }
    st.job = None;
    drop(st);
    let payload = job.panic.lock().expect("panic slot").take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}

/// Indexed parallel loop (generic-closure convenience over [`run`]).
pub fn par_range(n: usize, f: impl Fn(usize) + Sync) {
    run(n, &f);
}

/// Executes `task(0), …, task(n-1)` fused into at most `jobs` contiguous
/// chunks, each chunk a single pool task iterating its indices serially in
/// ascending order.
///
/// This is the fan-out shape for fine-grained work: instead of one pool
/// task per index (`n` wakeups and `n` bag claims), the caller picks a
/// chunking factor — typically [`num_threads`] — and pays pool overhead
/// once per chunk. Index order *within* a chunk matches the serial loop
/// and chunks are disjoint, so outputs are bit-identical to [`run`] and to
/// the plain serial loop. `jobs <= 1` (or `n < 2`) runs inline serially.
pub fn run_chunked(n: usize, jobs: usize, task: &(dyn Fn(usize) + Sync)) {
    let jobs = jobs.min(n);
    if jobs <= 1 || n < 2 {
        run_serial(n, task);
        return;
    }
    // Balanced contiguous partition: chunk c covers [c·n/jobs, (c+1)·n/jobs),
    // sizes differing by at most one. jobs ≤ n keeps every chunk non-empty.
    run(jobs, &|c| {
        let start = c * n / jobs;
        let end = (c + 1) * n / jobs;
        for i in start..end {
            task(i);
        }
    });
}

struct SendPtr<T>(*mut T);
// SAFETY: used only to hand each task a pointer to a distinct element.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Method (rather than field) access so closures capture `&SendPtr`
    // — which is Sync — instead of the raw `*mut T` field.
    #[inline]
    fn at(&self, i: usize) -> *mut T {
        // SAFETY: callers index within the slice/buffer this was built from.
        unsafe { self.0.add(i) }
    }
}

/// Mutates each slice element in parallel: `f(i, &mut items[i])`.
pub fn par_for_each_mut<T: Send, F: Fn(usize, &mut T) + Sync>(items: &mut [T], f: F) {
    let base = SendPtr(items.as_mut_ptr());
    run(items.len(), &|i| {
        // SAFETY: each index is claimed exactly once, so the &mut refs are
        // disjoint; `base` outlives the call because `run` joins all tasks.
        let item = unsafe { &mut *base.at(i) };
        f(i, item);
    });
}

/// [`par_for_each_mut`] fused into at most `jobs` chunked pool tasks (see
/// [`run_chunked`]): `f(i, &mut items[i])` for every `i`, bit-identical to
/// the serial loop for any `jobs`.
pub fn par_for_each_mut_chunked<T: Send, F: Fn(usize, &mut T) + Sync>(
    items: &mut [T],
    jobs: usize,
    f: F,
) {
    let base = SendPtr(items.as_mut_ptr());
    run_chunked(items.len(), jobs, &|i| {
        // SAFETY: each index is visited exactly once (chunks partition the
        // range), so the &mut refs are disjoint; `base` outlives the call
        // because `run_chunked` joins all tasks.
        let item = unsafe { &mut *base.at(i) };
        f(i, item);
    });
}

/// Parallel map: returns `[f(0, &items[0]), …]` with the same ordering as a
/// serial map.
pub fn par_map<T: Sync, U: Send, F: Fn(usize, &T) -> U + Sync>(items: &[T], f: F) -> Vec<U> {
    let n = items.len();
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization; every slot is written
    // below before the transmute-by-parts.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    run(n, &|i| {
        let value = f(i, &items[i]);
        // SAFETY: disjoint slots, one writer per index.
        unsafe { (*base.at(i)).write(value) };
    });
    // SAFETY: all n slots are initialized (run() completed without panic;
    // on panic we leak the partially initialized buffer, which is safe).
    let ptr = out.as_mut_ptr() as *mut U;
    let cap = out.capacity();
    std::mem::forget(out);
    unsafe { Vec::from_raw_parts(ptr, n, cap) }
}

/// [`par_map`] fused into at most `jobs` chunked pool tasks (see
/// [`run_chunked`]): output order and values are identical to the serial
/// map for any `jobs`.
pub fn par_map_chunked<T: Sync, U: Send, F: Fn(usize, &T) -> U + Sync>(
    items: &[T],
    jobs: usize,
    f: F,
) -> Vec<U> {
    let n = items.len();
    let mut out: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization; every slot is written
    // below before the transmute-by-parts.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    run_chunked(n, jobs, &|i| {
        let value = f(i, &items[i]);
        // SAFETY: disjoint slots, one writer per index.
        unsafe { (*base.at(i)).write(value) };
    });
    // SAFETY: all n slots are initialized (run_chunked completed without
    // panic; on panic we leak the partially initialized buffer — safe).
    let ptr = out.as_mut_ptr() as *mut U;
    let cap = out.capacity();
    std::mem::forget(out);
    unsafe { Vec::from_raw_parts(ptr, n, cap) }
}

/// A rayon-like scope: closures spawned onto it run in parallel after the
/// scope body returns; [`scope`] joins them all before returning.
pub struct Scope<'s> {
    tasks: RefCell<Vec<Box<dyn FnOnce() + Send + 's>>>,
}

impl<'s> Scope<'s> {
    /// Queues `f` for parallel execution at scope exit.
    pub fn spawn(&self, f: impl FnOnce() + Send + 's) {
        self.tasks.borrow_mut().push(Box::new(f));
    }
}

/// Runs `body`, then executes everything it spawned in parallel, joining
/// all tasks (and propagating the first panic) before returning.
pub fn scope<'s, R>(body: impl FnOnce(&Scope<'s>) -> R) -> R {
    let s = Scope {
        tasks: RefCell::new(Vec::new()),
    };
    type TaskSlot<'s> = Mutex<Option<Box<dyn FnOnce() + Send + 's>>>;
    let result = body(&s);
    let tasks = s.tasks.into_inner();
    let slots: Vec<TaskSlot<'s>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run(slots.len(), &|i| {
        let task = slots[i].lock().expect("task slot").take();
        if let Some(task) = task {
            task();
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the global thread-count override.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(n);
        let r = f();
        set_threads(0);
        r
    }

    #[test]
    fn par_for_each_mut_matches_serial() {
        for threads in [1usize, 2, 8] {
            with_threads(threads, || {
                let mut v: Vec<u64> = (0..1000).collect();
                par_for_each_mut(&mut v, |i, x| *x = *x * 3 + i as u64);
                let want: Vec<u64> = (0..1000u64).map(|i| i * 3 + i).collect();
                assert_eq!(v, want, "threads={threads}");
            });
        }
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1usize, 4] {
            with_threads(threads, || {
                let v: Vec<usize> = (0..257).collect();
                let out = par_map(&v, |i, &x| x * x + i);
                let want: Vec<usize> = (0..257).map(|x| x * x + x).collect();
                assert_eq!(out, want);
            });
        }
    }

    #[test]
    fn chunked_matches_serial_for_any_job_count() {
        for threads in [1usize, 4, 8] {
            with_threads(threads, || {
                for jobs in [0usize, 1, 2, 3, 7, 8, 100, 1000] {
                    let mut v: Vec<u64> = (0..999).collect();
                    par_for_each_mut_chunked(&mut v, jobs, |i, x| *x = *x * 3 + i as u64);
                    let want: Vec<u64> = (0..999u64).map(|i| i * 3 + i).collect();
                    assert_eq!(v, want, "threads={threads} jobs={jobs}");

                    let src: Vec<usize> = (0..257).collect();
                    let out = par_map_chunked(&src, jobs, |i, &x| x * x + i);
                    let want: Vec<usize> = (0..257).map(|x| x * x + x).collect();
                    assert_eq!(out, want, "threads={threads} jobs={jobs}");
                }
            });
        }
    }

    #[test]
    fn chunked_indices_run_exactly_once_in_chunk_order() {
        with_threads(8, || {
            let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
            run_chunked(500, 8, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn all_indices_run_exactly_once() {
        with_threads(8, || {
            let hits: Vec<AtomicU64> = (0..500).map(|_| AtomicU64::new(0)).collect();
            run(500, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn nested_sections_run_inline() {
        with_threads(4, || {
            let total = AtomicU64::new(0);
            run(8, &|_| {
                // Inner section from a pool task must not deadlock.
                run(8, &|_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(total.load(Ordering::Relaxed), 64);
        });
    }

    #[test]
    fn scope_joins_all_spawns() {
        with_threads(4, || {
            let a = AtomicU64::new(0);
            let b = AtomicU64::new(0);
            let r = scope(|s| {
                s.spawn(|| {
                    a.store(7, Ordering::Relaxed);
                });
                s.spawn(|| {
                    b.store(9, Ordering::Relaxed);
                });
                42
            });
            assert_eq!(r, 42);
            assert_eq!(a.load(Ordering::Relaxed), 7);
            assert_eq!(b.load(Ordering::Relaxed), 9);
        });
    }

    #[test]
    fn panics_propagate_to_caller() {
        with_threads(4, || {
            let caught = panic::catch_unwind(|| {
                run(64, &|i| {
                    if i == 13 {
                        panic!("boom at 13");
                    }
                });
            });
            assert!(caught.is_err(), "task panic must surface");
            // The pool must remain usable afterwards.
            let n = AtomicU64::new(0);
            run(16, &|_| {
                n.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(n.load(Ordering::Relaxed), 16);
        });
    }

    #[test]
    fn set_threads_clamps_and_resets() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(set_threads(1), 1);
        assert!(set_threads(10_000) <= MAX_POOL);
        set_threads(0); // reset to environment default
        assert!(num_threads() >= 1);
    }
}
