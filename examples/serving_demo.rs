//! Serving-layer demo: deadline-aware admission, per-bank circuit
//! breakers, and graceful degradation under injected faults.
//!
//! Run with: `cargo run --release --example serving_demo`
//!
//! Part 1 hand-builds a small multi-tenant trace (three priority classes,
//! one request dragging a hard PIM fault along) and serves it, printing
//! each typed outcome and the final bank-health snapshot. Part 2 runs the
//! seeded chaos soak the CI harness uses (`scripts/soak.sh`) at a reduced
//! request count.

use anaheim::core::build::Builder;
use anaheim::core::params::ParamSet;
use anaheim::pim::FaultPlan;
use anaheim::serving::soak::{check_invariants, run_soak, SoakConfig};
use anaheim::serving::{Outcome, Priority, Request, ServingConfig, ServingEngine};

fn main() {
    // --- Part 1: a hand-built trace through the engine API.
    let mut b = Builder::new(ParamSet::paper_default());
    let heavy =
        std::sync::Arc::new(b.lintrans(24, 6, anaheim::core::build::LinTransStyle::Hoisting, true));
    let light = std::sync::Arc::new(b.hmult(24));

    let mut engine = ServingEngine::new(ServingConfig::a100_default(2024));
    // Reference cost for picking arrivals/deadlines in virtual ns.
    let t_ref = 2_000_000.0;

    let mut trace = Vec::new();
    for (id, (tenant, priority, seq, label, fault)) in [
        // Tenant 0 streams interactive multiplies with tight deadlines.
        (0u32, Priority::Interactive, &light, "hmult", None),
        (0, Priority::Interactive, &light, "hmult", None),
        // Tenant 1 runs a heavy batch transform — loose deadline.
        (1, Priority::Batch, &heavy, "lintrans", None),
        // Tenant 2's request carries a hard fault: a stuck MMAC lane. The
        // owning bank's breaker opens and the kernel lands on the GPU.
        (
            2,
            Priority::Standard,
            &heavy,
            "lintrans+stuck-lane",
            Some(FaultPlan::none().with_seed(9).with_stuck_lane(3)),
        ),
        // Tenant 3 arrives behind everyone with an infeasible deadline —
        // admission control sheds it instead of letting it expire queued.
        (3, Priority::Standard, &light, "hmult-late", None),
    ]
    .into_iter()
    .enumerate()
    {
        let arrival = id as f64 * 0.2 * t_ref;
        let slack = match (priority, label) {
            (_, "hmult-late") => 0.05 * t_ref,
            (Priority::Interactive, _) => 3.0 * t_ref,
            (Priority::Standard, _) => 6.0 * t_ref,
            (Priority::Batch, _) => 20.0 * t_ref,
        };
        trace.push(Request {
            id: id as u64,
            tenant,
            priority,
            arrival_ns: arrival,
            deadline_ns: arrival + slack,
            seq: std::sync::Arc::clone(seq),
            fault,
            label,
        });
    }

    println!("serving {} requests from 4 tenants:\n", trace.len());
    let responses = engine.run_trace(&trace).expect("trace serves");
    for r in &responses {
        let verdict = match &r.outcome {
            Outcome::Completed {
                finish_ns,
                deadline_ns,
                faults,
                breaker_skips,
                ..
            } => format!(
                "ok at {:.2} ms (deadline {:.2} ms, {} fault(s), {} breaker skip(s))",
                finish_ns / 1e6,
                deadline_ns / 1e6,
                faults,
                breaker_skips
            ),
            Outcome::DeadlineMiss {
                finish_ns,
                deadline_ns,
                ..
            } => format!(
                "MISSED deadline ({:.2} ms > {:.2} ms)",
                finish_ns / 1e6,
                deadline_ns / 1e6
            ),
            Outcome::Cancelled {
                consumed_ns,
                segments_done,
                ..
            } => format!(
                "CANCELLED over budget after {:.2} ms ({segments_done} segment(s))",
                consumed_ns / 1e6
            ),
            Outcome::IntegrityFailure { finish_ns, .. } => format!(
                "INTEGRITY FAILURE at {:.2} ms (corrupted result, not a success)",
                finish_ns / 1e6
            ),
            Outcome::Rejected(why) => format!("shed: {why}"),
            Outcome::Rerouted {
                from_shard,
                to_shard,
                ..
            } => format!("rerouted shard {from_shard} -> {to_shard}"),
            Outcome::Hedged {
                winner,
                loser_consumed_ns,
                ..
            } => format!(
                "hedged: shard {winner} won ({:.2} ms wasted on the loser)",
                loser_consumed_ns / 1e6
            ),
            Outcome::Batched {
                evk_bytes_saved, ..
            } => format!(
                "batched: joined the running same-tenant batch ({:.1} MB of evk fetches saved)",
                *evk_bytes_saved as f64 / 1e6
            ),
        };
        println!(
            "  req {} tenant {} {:11} {:20} -> {verdict}",
            r.id, r.tenant, r.priority, r.label
        );
    }

    let snap = engine.snapshot();
    println!("\nbank health after the trace:");
    for bank in &snap.banks {
        println!(
            "  bank {}: {}{}",
            bank.bank,
            bank.state,
            if bank.permanent { " (permanent)" } else { "" }
        );
    }
    println!(
        "  {} PIM fault(s) absorbed, {} GPU fallback(s), {} breaker skip(s)",
        snap.counters.faults_detected, snap.counters.gpu_fallbacks, snap.counters.breaker_skips
    );

    // --- Part 2: the seeded chaos soak, scaled down.
    let cfg = SoakConfig {
        requests: 60,
        stuck_window: Some((20, 30)),
        ..SoakConfig::chaos(2024)
    };
    println!(
        "\nchaos soak: {} mixed requests, seed {}, fault storms + a stuck lane...",
        cfg.requests, cfg.seed
    );
    let out = run_soak(&cfg).expect("soak runs");
    let summary = check_invariants(&cfg, &out).expect("all invariants hold");
    println!("  {summary}");
    println!("  every outcome typed, every completion inside its deadline.");
}
