//! Functional CKKS bootstrapping: exhaust the modulus chain, bootstrap,
//! and keep computing — the defining feature of FHE (§II-C).
//!
//! Uses toy ring parameters (N = 2^9; functionally complete, not secure)
//! with a sparse secret so the ModRaise bound stays small, exactly the
//! reason the paper's Boot workload uses sparse-secret encapsulation.
//!
//! Run with: `cargo run --release --example bootstrap_demo`

use anaheim::ckks::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let params = CkksParams::builder()
        .log_n(9)
        .levels(16)
        .alpha(4)
        .scale_bits(42)
        .q0_bits(50)
        .p_bits(55)
        .hamming_weight(16)
        .build();
    let ctx = CkksContext::new(params);
    println!(
        "context: N = {}, L = {}, slots = {}",
        ctx.n(),
        ctx.max_level(),
        ctx.slots()
    );

    let bts = Bootstrapper::new(&ctx, BootstrapConfig::sparse_default());
    let mut rng = StdRng::seed_from_u64(99);
    println!(
        "generating keys ({} rotations)...",
        bts.required_rotations().len()
    );
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&bts.required_rotations());
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);

    let mut rng2 = StdRng::seed_from_u64(100);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|_| Complex::new(rng2.gen_range(-0.5..0.5), rng2.gen_range(-0.5..0.5)))
        .collect();

    // Encrypt fresh, then burn the whole modulus chain with squarings.
    let mut ct = keys
        .public
        .encrypt(&enc.encode(&msg, ctx.max_level()), &mut rng);
    let mut expect: Vec<Complex> = msg.clone();
    while ct.level() > 1 {
        ct = ev.mod_switch_to(&ct, ct.level().min(2));
        if ct.level() > 1 {
            ct = ev.rescale(&ev.mul_scalar(&ct, 1.0));
        }
    }
    println!("ciphertext exhausted at level {}", ct.level());

    // Bootstrap: the level is restored, the message survives.
    println!("bootstrapping (CoeffToSlot -> EvalMod -> SlotToCoeff)...");
    let t0 = std::time::Instant::now();
    let boosted = bts.bootstrap(&ev, &enc, &ct, &keys);
    println!(
        "bootstrapped in {:.1?}: level {} -> {}",
        t0.elapsed(),
        1,
        boosted.level()
    );

    let out = enc.decode(&keys.secret.decrypt(&boosted));
    let err = anaheim::ckks::complex::max_error(&expect, &out);
    println!("message error after bootstrap: {err:.2e}");
    assert!(err < 5e-2, "bootstrap must preserve the message");

    // Prove the restored levels are real: square twice.
    let sq = ev.rescale(&ev.square_relin(&boosted, &keys.relin));
    let sq2 = ev.rescale(&ev.square_relin(&sq, &keys.relin));
    let out2 = enc.decode(&keys.secret.decrypt(&sq2));
    for e in &mut expect {
        let z = *e * *e;
        *e = z * z;
    }
    let err2 = anaheim::ckks::complex::max_error(&expect, &out2);
    println!("after two more encrypted squarings: error {err2:.2e}");
    assert!(err2 < 0.3, "post-bootstrap computation must work");
    println!("ok");
}
