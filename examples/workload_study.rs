//! The Fig. 8 study as a runnable program: all six FHE workloads across
//! the GPU baselines and the three Anaheim configurations, with speedups,
//! energy gains, and EDP improvements.
//!
//! Run with: `cargo run --release --example workload_study`

use anaheim::core::framework::{Anaheim, AnaheimConfig};
use anaheim::workloads::{run_workload, Workload};

fn main() {
    let platforms = [
        AnaheimConfig::a100_baseline(),
        AnaheimConfig::a100_near_bank(),
        AnaheimConfig::a100_custom_hbm(),
        AnaheimConfig::rtx4090_baseline(),
        AnaheimConfig::rtx4090_near_bank(),
    ];
    println!(
        "{:16} {:28} {:>12} {:>10} {:>12}",
        "workload", "platform", "time", "energy", "EDP"
    );
    for w in Workload::all() {
        for cfg in &platforms {
            let rt = Anaheim::new(cfg.clone());
            let r = run_workload(&rt, &w).expect("preset config runs");
            match r.outcome {
                Some(n) => println!(
                    "{:16} {:28} {:>9.1} ms {:>8.2} J {:>10.3e}",
                    w.name,
                    cfg.name,
                    n.time_ms,
                    n.energy_j,
                    n.edp()
                ),
                None => println!(
                    "{:16} {:28} {:>12} {:>10} {:>12}",
                    w.name, cfg.name, "OoM", "-", "-"
                ),
            }
        }
        println!();
    }

    // Headline: T_boot,eff on the A100 pair.
    let boot = Workload::boot();
    let base = run_workload(&Anaheim::new(AnaheimConfig::a100_baseline()), &boot)
        .expect("preset config runs")
        .outcome
        .expect("fits");
    let pim = run_workload(&Anaheim::new(AnaheimConfig::a100_near_bank()), &boot)
        .expect("preset config runs")
        .outcome
        .expect("fits");
    println!(
        "T_boot,eff (A100): {:.2} ms -> {:.2} ms with PIM ({:.2}x speedup, {:.2}x EDP)",
        base.t_eff_ms(boot.l_eff),
        pim.t_eff_ms(boot.l_eff),
        base.time_ms / pim.time_ms,
        base.edp() / pim.edp()
    );
}
