//! Quickstart: encrypt a vector, compute on it homomorphically, decrypt.
//!
//! Run with: `cargo run --release --example quickstart`

use anaheim::ckks::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Parameters: a small functional ring (N = 2^10, 4 rescaling levels).
    //    These are toy parameters for demonstration — see `CkksParams` for
    //    the paper-scale settings used by the performance model.
    let params = CkksParams::builder()
        .log_n(10)
        .levels(4)
        .alpha(2)
        .scale_bits(40)
        .build();
    let ctx = CkksContext::new(params);
    println!(
        "ring degree N = {}, slots = {}, levels = {}",
        ctx.n(),
        ctx.slots(),
        ctx.max_level()
    );

    // 2. Keys: secret/public plus rotation keys for distances 1 and 4.
    let mut rng = StdRng::seed_from_u64(2024);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[1, 4]);

    // 3. Encode & encrypt two messages.
    let enc = Encoder::new(&ctx);
    let x: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new((i as f64 / 100.0).sin(), 0.0))
        .collect();
    let y: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(0.5 + (i % 4) as f64 * 0.1, 0.0))
        .collect();
    let ct_x = keys
        .public
        .encrypt(&enc.encode(&x, ctx.max_level()), &mut rng);
    let ct_y = keys
        .public
        .encrypt(&enc.encode(&y, ctx.max_level()), &mut rng);

    // 4. Compute homomorphically: (x + y) · y, then rotate by 4.
    let ev = Evaluator::new(&ctx);
    let sum = ev.add(&ct_x, &ct_y);
    let prod = ev.mul_relin_rescale(&sum, &ct_y, &keys.relin);
    let rotated = ev.rotate(&prod, 4, &keys);

    // 5. Decrypt & verify.
    let out = enc.decode(&keys.secret.decrypt(&rotated));
    let mut max_err = 0.0f64;
    for (j, &o) in out.iter().enumerate().take(ctx.slots()) {
        let src = (j + 4) % ctx.slots();
        let want = (x[src] + y[src]) * y[src];
        max_err = max_err.max((o - want).abs());
    }
    println!("homomorphic ((x+y)*y) <<4 computed; max error = {max_err:.2e}");
    assert!(max_err < 1e-3, "unexpected error");
    println!("ok");
}
