//! The Sort workload's primitive [35] (§VII-A) at functional scale:
//! a homomorphic compare-exchange. Two encrypted vectors are sorted
//! pair-wise (per-slot min/max) without ever decrypting the data, using the
//! composite-polynomial sign approximation — the operation a two-way
//! sorting network applies `log²(n)` times.
//!
//! Run with: `cargo run --release --example encrypted_compare_exchange`

use anaheim::ckks::compare::{compare, min_max};
use anaheim::ckks::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let params = CkksParams::builder()
        .log_n(10)
        .levels(15)
        .alpha(3)
        .scale_bits(40)
        .build();
    let ctx = CkksContext::new(params);
    let mut rng = StdRng::seed_from_u64(2025);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);

    // Two lanes of an encrypted sorting network: values in [-0.9, 0.9]
    // with a separation margin (the workload keeps margins via scaling).
    let m = ctx.slots();
    let mut rng2 = StdRng::seed_from_u64(7);
    let a: Vec<f64> = (0..m).map(|_| rng2.gen_range(-0.9..0.9)).collect();
    let b: Vec<f64> = (0..m)
        .map(|i| {
            let mut v = rng2.gen_range(-0.9..0.9);
            while (v - a[i]).abs() < 0.2 {
                v = rng2.gen_range(-0.9..0.9);
            }
            v
        })
        .collect();

    let encrypt = |v: &[f64], rng: &mut StdRng| {
        let msg: Vec<Complex> = v.iter().map(|&x| Complex::new(x, 0.0)).collect();
        keys.public.encrypt(&enc.encode(&msg, ctx.max_level()), rng)
    };
    let ca = encrypt(&a, &mut rng);
    let cb = encrypt(&b, &mut rng);

    // Compare-exchange: each slot pair ends up ordered.
    println!("running homomorphic compare-exchange over {m} slot pairs...");
    let t0 = std::time::Instant::now();
    let (mn, mx) = min_max(&ev, &ca, &cb, &keys.relin, 3);
    println!("done in {:.1?} (levels left: {})", t0.elapsed(), mn.level());

    let out_mn = enc.decode(&keys.secret.decrypt(&mn));
    let out_mx = enc.decode(&keys.secret.decrypt(&mx));
    let mut worst = 0.0f64;
    let mut swaps = 0usize;
    for i in 0..m {
        let (wmn, wmx) = (a[i].min(b[i]), a[i].max(b[i]));
        worst = worst.max((out_mn[i].re - wmn).abs().max((out_mx[i].re - wmx).abs()));
        if a[i] > b[i] {
            swaps += 1;
        }
    }
    println!("{swaps}/{m} pairs needed a swap; worst-case error {worst:.3}");
    assert!(worst < 0.1, "compare-exchange must order every pair");

    // Bonus: an explicit comparison indicator a > b in {0, 1}.
    let ind = compare(&ev, &ca, &cb, &keys.relin, 4);
    let out = enc.decode(&keys.secret.decrypt(&ind));
    let wrong = (0..m)
        .filter(|&i| (out[i].re > 0.5) != (a[i] > b[i]))
        .count();
    println!("comparison indicator wrong on {wrong}/{m} slots");
    assert_eq!(wrong, 0);
    println!("ok");
}
