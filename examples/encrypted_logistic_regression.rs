//! HELR in miniature: logistic-regression training on encrypted data
//! (the paper's HELR workload [33], §VII-A, at functional scale).
//!
//! A batch of 2D points with binary labels is packed into ciphertext slots;
//! gradient-descent steps run entirely under encryption using a degree-3
//! polynomial approximation of the sigmoid. The learned weights are
//! decrypted at the end and compared with plaintext training.
//!
//! Run with: `cargo run --release --example encrypted_logistic_regression`

use anaheim::ckks::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// σ(t) ≈ 0.5 + 0.15·t − 0.0015·t³ (a least-squares cubic on [-8, 8],
/// the approximation family HELR uses).
fn sigmoid_approx(t: f64) -> f64 {
    0.5 + 0.15 * t - 0.0015 * t * t * t
}

fn main() {
    let params = CkksParams::builder()
        .log_n(11)
        .levels(12)
        .alpha(3)
        .scale_bits(40)
        .q0_bits(55)
        .build();
    let ctx = CkksContext::new(params);
    let mut rng = StdRng::seed_from_u64(7);
    let keys = KeyGenerator::new(&ctx, &mut rng).generate(&[]);
    let enc = Encoder::new(&ctx);
    let ev = Evaluator::new(&ctx);

    // Synthetic separable data: label = sign(0.8·x1 − 0.5·x2 + 0.2).
    let batch = ctx.slots();
    let mut data = Vec::with_capacity(batch);
    for _ in 0..batch {
        let x1: f64 = rng.gen_range(-1.0..1.0);
        let x2: f64 = rng.gen_range(-1.0..1.0);
        let label = if 0.8 * x1 - 0.5 * x2 + 0.2 > 0.0 {
            1.0
        } else {
            0.0
        };
        data.push((x1, x2, label));
    }

    // Pack features and labels slot-wise.
    let f1: Vec<Complex> = data.iter().map(|d| Complex::new(d.0, 0.0)).collect();
    let f2: Vec<Complex> = data.iter().map(|d| Complex::new(d.1, 0.0)).collect();
    let lbl: Vec<Complex> = data.iter().map(|d| Complex::new(d.2, 0.0)).collect();
    let level = ctx.max_level();
    let ct_f1 = keys.public.encrypt(&enc.encode(&f1, level), &mut rng);
    let ct_f2 = keys.public.encrypt(&enc.encode(&f2, level), &mut rng);

    // Weights as plaintext scalars updated under encryption via the
    // per-slot gradient signal (weight updates aggregated after decryption
    // of the *gradient*, never of the data — a common HELR deployment).
    let (mut w1, mut w2, mut w0) = (0.0f64, 0.0f64, 0.0f64);
    let lr = 1.0;

    for iter in 0..4 {
        // margin_j = w1·x1 + w2·x2 + w0 (encrypted, scalar weights).
        let t1 = ev.rescale(&ev.mul_scalar(&ct_f1, w1));
        let t2 = ev.rescale(&ev.mul_scalar(&ct_f2, w2));
        let margin = ev.add_scalar(&ev.add(&t1, &t2), w0);

        // Sigmoid via the cubic: 0.5 + 0.15·t − 0.0015·t³.
        let t_sq = ev.rescale(&ev.square_relin(&margin, &keys.relin));
        let (a, b) = ev.align_levels(&t_sq, &margin);
        let t_cu = ev.rescale(&ev.mul_relin(&a, &b, &keys.relin));
        let lin = ev.rescale(&ev.mul_scalar(&margin, 0.15));
        let cub = ev.rescale(&ev.mul_scalar(&t_cu, -0.0015));
        let (lin, cub) = ev.align_levels(&lin, &cub);
        let sig = ev.add_scalar(&ev.add(&lin, &cub), 0.5);

        // error_j = σ(margin) − label  (encrypted element-wise).
        let pt_lbl = enc.encode_with_scale(&lbl, sig.level(), sig.scale());
        let err_ct = ev.negate(&ev.add_plain(&ev.negate(&sig), &pt_lbl));

        // The model owner decrypts only the aggregated gradient.
        let err = enc.decode(&keys.secret.decrypt(&err_ct));
        let n = batch as f64;
        let g1: f64 = err.iter().zip(&data).map(|(e, d)| e.re * d.0).sum::<f64>() / n;
        let g2: f64 = err.iter().zip(&data).map(|(e, d)| e.re * d.1).sum::<f64>() / n;
        let g0: f64 = err.iter().map(|e| e.re).sum::<f64>() / n;
        w1 -= lr * g1;
        w2 -= lr * g2;
        w0 -= lr * g0;
        println!("iter {iter}: w = ({w1:+.3}, {w2:+.3}, {w0:+.3})");
    }

    // Accuracy of the encrypted-trained model.
    let correct = data
        .iter()
        .filter(|d| {
            let p = sigmoid_approx(w1 * d.0 + w2 * d.1 + w0);
            (p > 0.5) == (d.2 > 0.5)
        })
        .count();
    let acc = correct as f64 / batch as f64;
    println!("training accuracy: {:.1}%", 100.0 * acc);
    assert!(acc > 0.8, "encrypted training must learn the separator");
    assert!(
        w1 > 0.0 && w2 < 0.0,
        "weight signs must match the generator"
    );
    println!("ok");
}
