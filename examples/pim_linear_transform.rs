//! The paper's running example (Fig. 4a / Fig. 5): a hoisted homomorphic
//! linear transform (K = 8, D = 4) executed through the Anaheim framework
//! on three platforms — GPU-only, a hypothetical 4×-bandwidth GPU, and
//! GPU + near-bank PIM — with Gantt charts.
//!
//! Run with: `cargo run --release --example pim_linear_transform`

use anaheim::core::build::{Builder, LinTransStyle};
use anaheim::core::framework::{Anaheim, AnaheimConfig};
use anaheim::core::params::ParamSet;

fn main() {
    let params = ParamSet::paper_default();
    println!(
        "linear transform: K = 8 diagonals, D = {}, L = {}, N = 2^{}",
        params.d, params.l_max, params.log_n
    );
    println!(
        "evk = {:.0} MB, PQ polynomial = {:.1} MB (cf. §III-A)\n",
        params.evk_bytes() as f64 / 1e6,
        params.poly_bytes(params.l_max + params.alpha) as f64 / 1e6
    );

    let build = || {
        let mut b = Builder::new(params.clone());
        b.lintrans(params.l_max, 8, LinTransStyle::Hoisting, true)
    };

    let mut base_ns = None;
    for cfg in [
        AnaheimConfig::a100_baseline(),
        AnaheimConfig::a100_4x_bandwidth(),
        AnaheimConfig::a100_near_bank(),
    ] {
        let name = cfg.name;
        let rt = Anaheim::new(cfg);
        let report = rt.run(build()).expect("preset config runs");
        let speedup = base_ns
            .map(|b: f64| format!("  ({:.2}x)", b / report.total_ns))
            .unwrap_or_default();
        if base_ns.is_none() {
            base_ns = Some(report.total_ns);
        }
        println!("[{name}]{speedup}");
        println!("  {}", report.summary_line());
        print!("{}", report.render_gantt(96));
        println!();
    }
    println!("shape (Fig. 4a): element-wise ops collapse onto the PIM row; ModSwitch");
    println!("((I)NTT + BConv) stays on the GPU and barely moves with 4x bandwidth.");
}
