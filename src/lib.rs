//! Facade crate for the Anaheim reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use anaheim::...`. See the individual crates for
//! the real APIs:
//!
//! - [`math`] (`ckks-math`): modular arithmetic, NTT, RNS, BConv.
//! - [`ckks`]: the CKKS scheme (keys, encoder, evaluator, linear transforms,
//!   bootstrapping).
//! - [`dram`]: DRAM timing/energy simulator.
//! - [`pim`]: the Anaheim PIM model (ISA, layout, execution engine).
//! - [`gpu`]: analytical GPU performance/energy model.
//! - [`core`] (`anaheim-core`): the Anaheim framework — IR, passes, scheduler.
//! - [`workloads`]: the six paper workloads.
//! - [`serving`]: the deadline-aware serving layer (admission control,
//!   per-bank circuit breakers, chaos-soak harness).
//! - [`obs`]: deterministic observability — virtual-time spans, a typed
//!   metrics registry, Prometheus/Chrome-trace exporters.
//!
//! # Running a workload through the Anaheim framework
//!
//! ```
//! use anaheim::core::framework::{Anaheim, AnaheimConfig};
//! use anaheim::workloads::{run_workload, Workload};
//!
//! let baseline = Anaheim::new(AnaheimConfig::a100_baseline());
//! let pim = Anaheim::new(AnaheimConfig::a100_near_bank());
//! let boot = Workload::boot();
//!
//! let b = run_workload(&baseline, &boot)
//!     .expect("runs")
//!     .outcome
//!     .expect("fits");
//! let p = run_workload(&pim, &boot).expect("runs").outcome.expect("fits");
//! let speedup = b.time_ms / p.time_ms;
//! assert!(speedup > 1.0, "PIM must accelerate bootstrapping");
//! ```

pub use anaheim_core as core;
pub use ckks;
pub use ckks_math as math;
pub use dram;
pub use gpu;
pub use obs;
pub use pim;
pub use serving;
pub use workloads;
